"""Flow configuration.

One dataclass gathers every knob of the flow, with defaults following
the paper (and RePlAce where the paper inherits them).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Optional

import numpy as np

#: The one default seed of the whole toolkit.  Both the benchmark
#: generator (``repro.benchgen.CircuitSpec``) and the placement flow
#: (:class:`PlacementParams`, the ``place``/``generate`` CLI verbs)
#: default to this value, and ``repro.runner`` folds the effective seed
#: into every job's content hash — two jobs that differ only in seed
#: hash (and therefore cache) separately.
DEFAULT_SEED = 42


@dataclass
class PlacementParams:
    """Configuration of the DREAMPlace flow."""

    # -- numerics ------------------------------------------------------
    dtype: str = "float64"  # "float32" or "float64" (the paper's sweeps)
    seed: int = DEFAULT_SEED
    #: run the GP hot-loop kernels on persistent workspace buffers
    #: (zero steady-state allocations); False restores the original
    #: allocate-per-call kernels (the pooling benchmarks' baseline)
    workspace_pooling: bool = True
    #: capture the GP objective graph on the first closure evaluation
    #: and replay it as a precompiled straight-line tape afterwards
    #: (bit-exact against eager; recaptured on structural events and
    #: automatically disabled for graphs with capture-unsafe ops).
    #: False (CLI ``--no-capture``) forces eager execution throughout
    graph_capture: bool = True

    # -- density system ------------------------------------------------
    target_density: float = 1.0
    #: bins per axis; ``None`` auto-sizes to a power of two near
    #: sqrt(num_movable), clamped to [16, 512] (RePlAce-style grids)
    num_bins: Optional[int] = None
    density_strategy: str = "stamp"  # see repro.ops.density_map
    dct_impl: str = "2d"  # see repro.ops.dct
    use_fillers: bool = True

    # -- wirelength model ------------------------------------------------
    wirelength: str = "wa"  # "wa" or "lse"
    wirelength_strategy: str = "merged"  # see repro.ops.wa_wirelength
    #: gamma = gamma_factor * (bin_w + bin_h)/2 * 10^(k*overflow + b)
    gamma_factor: float = 4.0
    #: DREAMPlace-style high-fanout filter: nets with more pins than
    #: this are masked out of the smooth wirelength *gradient* (they
    #: carry no locality signal and dominate kernel cost) while still
    #: counted in every reported HPWL.  0 disables the filter.
    ignore_net_degree: int = 0

    # -- multilevel cascade ----------------------------------------------
    #: GP resolution levels: 1 = flat (bit-identical to the classic
    #: single-level flow), N > 1 coarsens the netlist N-1 times and
    #: runs coarse-to-fine with warm-started refinement
    multilevel_levels: int = 1
    #: per-level movable-cell shrink target for the coarsener
    #: (``repro.netlist.coarsen``): each level keeps at most this
    #: fraction of the previous level's movable cells
    coarsen_ratio: float = 0.35
    #: overflow at which a *coarse* level may stop (the fine level
    #: always runs to ``stop_overflow``); coarse optima below this are
    #: wasted work that warm-starting discards anyway
    multilevel_coarse_overflow: float = 0.15
    #: plateau patience for coarse levels (early handoff on stalls)
    multilevel_coarse_patience: int = 40
    #: density-weight growth (``mu_max``) floor for coarse levels:
    #: their lambda ramp can run hotter than the fine level's because
    #: warm-starting keeps only the global structure of their result
    multilevel_coarse_mu: float = 1.10
    #: ``density_weight_scale`` multiplier applied to every
    #: *warm-started* level (all but the coarsest).  Restarting the
    #: balanced lambda_0 at full strength on a prolonged placement is
    #: too density-dominant: the fine level needs a stretch of
    #: wirelength-led iterations to repair the cluster-granularity
    #: HPWL damage before spreading resumes
    multilevel_warm_lambda_scale: float = 0.1
    #: stop generating coarser levels below this many movable cells
    multilevel_min_cells: int = 512

    # -- optimizer -------------------------------------------------------
    optimizer: str = "nesterov"  # nesterov | adam | sgd | rmsprop | cg
    learning_rate: float = 0.01  # relative to region size for non-Nesterov
    lr_decay: float = 1.0  # per-iteration exponential decay (Table IV)
    momentum: float = 0.9  # for sgd

    # -- global placement loop -------------------------------------------
    max_global_iters: int = 1000
    min_global_iters: int = 20
    stop_overflow: float = 0.10
    #: initial-placement noise, fraction of region size (paper: 0.1%)
    init_noise_ratio: float = 0.001
    #: density weight update (eq. 18)
    mu_min: float = 0.95
    mu_max: float = 1.05
    ref_delta_hpwl: float = 3.5e5
    #: TCAD tweak: mu_max * max(0.9999^k, 0.98) when HPWL improves
    tcad_mu_tweak: bool = True
    #: give up if HPWL exceeds this multiple of its running minimum
    divergence_ratio: float = 8.0

    # -- convergence monitoring & recovery (TCAD hardening) ----------------
    #: roll back to the best checkpoint on divergence / NaN instead of
    #: giving up with the diverged iterate
    enable_recovery: bool = True
    #: rollback budget per ``place`` call before giving up gracefully
    max_recoveries: int = 3
    #: multiply lambda by this factor on every rollback (damped retry)
    recovery_lambda_damping: float = 0.5
    #: stop when overflow has not improved for this many iterations
    plateau_patience: int = 150
    #: minimum overflow decrease counted as progress
    overflow_improve_tol: float = 1e-3
    #: scale on the balanced lambda_0 (1.0 = paper; used by divergence
    #: injection tests and manual lambda sweeps)
    density_weight_scale: float = 1.0

    # -- flow stages -------------------------------------------------------
    legalize: bool = True
    detailed: bool = True
    detailed_passes: int = 2
    #: verify legality after LG and after DP and raise
    #: :class:`repro.lg.LegalityError` on any violation (overlap,
    #: off-grid, fence breach) instead of returning a broken placement
    legality_gate: bool = True

    # -- routability-driven mode (Section III-F) ---------------------------
    routability: bool = False
    route_num_tiles: int = 32
    route_num_layers: int = 4
    route_tile_capacity: float = 12.0  # tracks per tile edge per layer
    inflation_exponent: float = 2.5
    inflation_max_ratio: float = 2.5
    inflation_overflow_trigger: float = 0.20
    inflation_whitespace_cap: float = 0.10
    inflation_stop_ratio: float = 0.01
    inflation_max_rounds: int = 5
    inflation_lambda_period: int = 5

    verbose: bool = False

    # ------------------------------------------------------------------
    def np_dtype(self) -> np.dtype:
        if self.dtype not in ("float32", "float64"):
            raise ValueError(f"unsupported dtype {self.dtype!r}")
        return np.dtype(self.dtype)

    def resolve_num_bins(self, num_movable: int) -> int:
        """Auto-size the bin grid to a power of two near sqrt(#cells)."""
        if self.num_bins is not None:
            return int(self.num_bins)
        guess = int(2 ** np.ceil(np.log2(max(np.sqrt(max(num_movable, 1)), 1))))
        return int(np.clip(guess, 16, 512))

    def with_overrides(self, **kwargs) -> "PlacementParams":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON-types dict of every knob (canonical field order).

        The inverse of :meth:`from_dict`; ``repro.runner`` serializes
        job specs through this pair and hashes the canonical JSON form.
        """
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, np.generic):
                value = value.item()
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "PlacementParams":
        """Rebuild from :meth:`to_dict` output; unknown keys rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown placement parameter(s): {sorted(unknown)}"
            )
        return cls(**data)
