"""Multilevel global placement: coarse-to-fine GP cascade.

The DG-RePlAce-style accelerant on top of the kernel GP loop: coarsen
the netlist ``multilevel_levels - 1`` times (``repro.netlist.coarsen``,
deterministic heavy-edge matching), run GP on the coarsest problem
from a cold start, then repeatedly *prolong* cluster positions onto
the next-finer level and warm-start its GP from there.

Why it is fast:

- a level with ``r``x fewer movable cells costs roughly ``r``x less
  per iteration (wirelength is pin-linear, the density grid auto-sizes
  to ``sqrt(num_movable)`` via ``PlacementParams.resolve_num_bins``),
  so coarse iterations are nearly free;
- the fine level starts from an already-spread placement, skipping
  the expensive early phase where a cold start untangles the random
  center initialization — it needs a fraction of the flat iteration
  count to reach the same overflow target.

Coarse levels run with a relaxed overflow target and a short plateau
patience (``multilevel_coarse_*`` knobs): past that point the coarse
optimum stops transferring through prolongation, so the budget is
handed to the finer level instead.

Checkpoint/resume: the driver stamps the active level (and its
movable-cell count, as a determinism guard) into every
``capture_loop_state()`` dict via ``GlobalPlacer.checkpoint_extra``.
Because coarsening is a pure function of the database and parameters,
resuming rebuilds the identical level stack, restores the checkpointed
level's loop state, and continues prolonging downward — completed
coarser levels never replay, their only output (the warm-start
positions) is already inside the checkpoint.

Each level's GP runs inside a ``gp.level{i}`` trace span/profiler op
(plus ``gp.coarsen``/``gp.prolong`` for the transfer operators), and
each ``on_iteration`` info dict gains ``level``/``num_levels`` keys.
"""

from __future__ import annotations

import numpy as np

from repro.core.global_place import GlobalPlacer, GlobalPlaceResult
from repro.core.params import PlacementParams
from repro.netlist.coarsen import CoarseLevel, coarsen
from repro.netlist.database import PlacementDB
from repro.obs.trace import trace_span
from repro.perf.profiler import profiled


def build_levels(db: PlacementDB, params: PlacementParams,
                 fences=None) -> list[CoarseLevel]:
    """The level stack, finest first.

    ``levels[0]`` is an identity level over ``db``; ``levels[i]`` for
    ``i >= 1`` coarsens ``levels[i-1].db``.  Generation stops early
    when a level would fall below ``multilevel_min_cells`` movable
    cells or the coarsener stalls, so the stack may be shorter than
    ``multilevel_levels``.
    """
    from repro.netlist.coarsen import _identity_level

    levels = [_identity_level(db, fences)]
    for _ in range(1, max(int(params.multilevel_levels), 1)):
        prev = levels[-1]
        if prev.db.num_movable <= params.multilevel_min_cells:
            break
        step = coarsen(prev.db, params.coarsen_ratio, fences=prev.fences)
        if step.identity:
            break
        levels.append(step)
    return levels


def _coarse_bins(num_movable: int) -> int:
    """Coarse-level grid rule: power of two *below* sqrt(#movable).

    The default auto-sizing (``PlacementParams.resolve_num_bins``)
    rounds up, which is right for the final-quality fine level; coarse
    levels only need the density field to spread clusters, and the
    DCT/stamping cost is quadratic in the grid side, so rounding down
    buys a 4x cheaper field at no measurable transfer loss.
    """
    guess = 2 ** int(np.floor(np.log2(max(
        np.sqrt(max(num_movable, 1)), 1))))
    return int(np.clip(guess, 16, 512))


def _level_params(params: PlacementParams, level: int, num_levels: int,
                  num_movable: int) -> PlacementParams:
    """Per-level GP knobs.

    Coarse levels (``level > 0``) scale the density grid to their own
    cell count, stop early on relaxed targets/plateaus, and ramp
    lambda hotter (``multilevel_coarse_mu``) — their job is global
    structure, not a polished optimum.  Warm-started levels (all but
    the coarsest) soften the balanced lambda_0 restart by
    ``multilevel_warm_lambda_scale`` so refinement opens with
    wirelength-led repair iterations.  A single-level stack therefore
    returns ``params`` untouched: the flat path stays bit-identical.
    """
    p = params
    if level > 0:
        p = p.with_overrides(
            num_bins=_coarse_bins(num_movable),
            stop_overflow=max(params.stop_overflow,
                              params.multilevel_coarse_overflow),
            plateau_patience=min(params.plateau_patience,
                                 params.multilevel_coarse_patience),
            mu_max=max(params.mu_max, params.multilevel_coarse_mu),
        )
    if level < num_levels - 1:
        p = p.with_overrides(
            density_weight_scale=(p.density_weight_scale
                                  * params.multilevel_warm_lambda_scale),
        )
    return p


def multilevel_place(db: PlacementDB, params: PlacementParams,
                     fences=None, on_iteration=None,
                     resume_state: dict | None = None) -> GlobalPlaceResult:
    """Run the coarse-to-fine cascade; returns the *fine* GP result.

    The returned :class:`GlobalPlaceResult` carries the fine level's
    positions/metrics, with ``iterations`` summed across every level
    (total GP work) and a ``levels`` attribute listing the per-level
    outcomes.  ``resume_state`` must come from a checkpoint captured
    by this driver (it records the active level).
    """
    with trace_span("gp.coarsen", levels=int(params.multilevel_levels)), \
            profiled("gp.coarsen"):
        levels = build_levels(db, params, fences=fences)

    start_level = len(levels) - 1
    level_resume = None
    if resume_state is not None:
        start_level = int(resume_state.get("multilevel_level",
                                           len(levels) - 1))
        if not 0 <= start_level < len(levels):
            raise ValueError(
                f"checkpoint level {start_level} outside the rebuilt "
                f"{len(levels)}-level cascade (parameters changed?)"
            )
        expect = resume_state.get("multilevel_cells")
        have = levels[start_level].db.num_movable
        if expect is not None and int(expect) != have:
            raise ValueError(
                f"checkpoint level {start_level} had {expect} movable "
                f"cells, rebuilt level has {have}: the cascade is not "
                f"the one that was checkpointed"
            )
        level_resume = resume_state

    warm = None
    # completed-level history rides inside every checkpoint so a
    # resumed cascade reports the same totals as an uninterrupted one
    # (already-finished coarse levels are never replayed)
    total_iterations = 0
    total_recoveries = 0
    level_infos = []
    if level_resume is not None:
        total_iterations = int(level_resume.get("multilevel_iterations", 0))
        total_recoveries = int(level_resume.get("multilevel_recoveries", 0))
        level_infos = [dict(info) for info
                       in level_resume.get("multilevel_done", [])]
    result = None
    for level in range(start_level, -1, -1):
        stack = levels[level]
        level_db = stack.db
        placer = GlobalPlacer(
            level_db,
            _level_params(params, level, len(levels),
                          level_db.num_movable),
            fences=stack.fences,
        )
        placer.checkpoint_extra = {
            "multilevel_level": level,
            "multilevel_cells": level_db.num_movable,
            "multilevel_iterations": total_iterations,
            "multilevel_recoveries": total_recoveries,
            "multilevel_done": [dict(info) for info in level_infos],
        }
        if warm is not None:
            placer.set_positions(*warm)

        def hook(placer_, info, _level=level):
            if on_iteration is not None:
                info = dict(info)
                info["level"] = _level
                info["num_levels"] = len(levels)
                on_iteration(placer_, info)

        with trace_span(f"gp.level{level}",
                        cells=level_db.num_movable,
                        nets=level_db.num_nets,
                        pins=level_db.num_pins), \
                profiled(f"gp.level{level}"):
            result = placer.place(on_iteration=hook,
                                  resume_state=level_resume)
        level_resume = None
        total_iterations += result.iterations
        total_recoveries += result.recoveries
        # deterministic fields only: this dict lands in metrics.json,
        # which the kill/resume machinery compares bit-exactly against
        # uninterrupted runs (timing lives in the trace spans)
        level_infos.append({
            "level": level,
            "cells": int(level_db.num_movable),
            "nets": int(level_db.num_nets),
            "pins": int(level_db.num_pins),
            "bins": int(placer.grid.nx),
            "iterations": int(result.iterations),
            "hpwl": float(result.hpwl),
            "overflow": float(result.overflow),
            "converged": bool(result.converged),
        })

        if level > 0:
            with trace_span("gp.prolong", level=level), \
                    profiled("gp.prolong"):
                warm = stack.prolong(result.x, result.y)

    result.iterations = total_iterations
    result.recoveries = total_recoveries
    result.levels = level_infos
    return result
