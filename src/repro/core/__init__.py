"""Core placement engine: the DREAMPlace flow (Fig. 2(b)).

Random-center initial placement -> kernel global-placement iterations
(wirelength + density forward/backward, gradient-descent optimizer,
density-weight and gamma annealing) -> legalization -> detailed
placement, with an optional routability-driven cell-inflation loop.
"""

from repro.core.params import DEFAULT_SEED, PlacementParams
from repro.core.placer import DreamPlacer, PlacementResult, StageTimes
from repro.core.global_place import GlobalPlacer, GlobalPlaceResult
from repro.core.multilevel import build_levels, multilevel_place
from repro.core.convergence import (
    ConvergenceMonitor,
    IterationStatus,
    PlacerSnapshot,
)
from repro.core.metrics import (
    placement_result_metrics,
    placement_summary,
    placement_summary_metrics,
    scaled_hpwl,
)
from repro.core.fence import (
    FenceRegion,
    MultiRegionDensity,
    fence_clamp_bounds,
    fence_of_cell,
)

__all__ = [
    "DEFAULT_SEED",
    "PlacementParams",
    "placement_result_metrics",
    "placement_summary_metrics",
    "DreamPlacer",
    "PlacementResult",
    "StageTimes",
    "GlobalPlacer",
    "GlobalPlaceResult",
    "build_levels",
    "multilevel_place",
    "ConvergenceMonitor",
    "IterationStatus",
    "PlacerSnapshot",
    "placement_summary",
    "scaled_hpwl",
    "FenceRegion",
    "MultiRegionDensity",
    "fence_clamp_bounds",
    "fence_of_cell",
]
