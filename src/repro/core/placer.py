"""The full DREAMPlace flow (Fig. 2(b)).

``DreamPlacer`` chains random-center initialization, the kernel GP
iterations, (optionally) the routability-driven inflation loop of
Section III-F, Tetris+Abacus legalization and detailed placement, with
per-stage timing matching the paper's runtime tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.convergence import ConvergenceMonitor
from repro.core.global_place import GlobalPlacer
from repro.core.metrics import scaled_hpwl
from repro.core.params import PlacementParams
from repro.dp.detailed_placer import DetailedPlacer, DetailedPlaceStats
from repro.lg.checker import LegalityError, LegalityReport, check_legal
from repro.lg.legalizer import legalize
from repro.netlist.database import PlacementDB
from repro.obs.trace import trace_span


@dataclass
class StageTimes:
    """Wall-clock seconds per flow stage (the paper's runtime columns)."""

    global_place: float = 0.0
    global_route: float = 0.0  # routability mode only ("GR" in Table V)
    legalize: float = 0.0
    detailed: float = 0.0

    @property
    def total(self) -> float:
        return (self.global_place + self.global_route
                + self.legalize + self.detailed)


@dataclass
class PlacementResult:
    """Everything the paper's tables report for one run."""

    x: np.ndarray
    y: np.ndarray
    hpwl_global: float
    hpwl_legal: float
    hpwl_final: float
    overflow: float
    iterations: int
    times: StageTimes
    legality: Optional[LegalityReport] = None
    dp_stats: Optional[DetailedPlaceStats] = None
    # routability-driven metrics (Table V)
    rc: Optional[float] = None
    shpwl: Optional[float] = None
    inflation_rounds: int = 0
    router_calls: int = 0
    # convergence robustness (TCAD hardening)
    recoveries: int = 0
    diverged: bool = False
    best_hpwl: float = float("nan")
    #: per-level GP outcomes (coarsest first) when the multilevel
    #: cascade ran; None for the flat single-level flow
    gp_levels: Optional[list] = None


class DreamPlacer:
    """End-to-end placer: GP -> (routability loop) -> LG -> DP.

    With ``fences`` (a list of :class:`~repro.core.fence.FenceRegion`)
    the whole flow is fence-aware: GP spreads each fence group in its
    own field, LG legalizes each group inside its region, DP never
    moves a cell across a fence boundary, and the legality gate
    (:attr:`PlacementParams.legality_gate`) verifies all of it after
    LG and after DP.
    """

    def __init__(self, db: PlacementDB, params: PlacementParams | None = None,
                 fences=None):
        self.db = db
        self.params = params or PlacementParams()
        self.fences = list(fences) if fences else None
        #: resolved router capacity (``route_tile_capacity <= 0`` means
        #: auto-calibrate to a mildly congested level on first routing)
        self._route_capacity: float | None = (
            self.params.route_tile_capacity
            if self.params.route_tile_capacity > 0 else None
        )

    def _check_stage(self, stage: str, x: np.ndarray, y: np.ndarray
                     ) -> LegalityReport:
        """Post-stage legality check; the gate raises on violations."""
        with trace_span(f"check.{stage}") as span:
            report = check_legal(self.db, x, y, fences=self.fences)
            if span is not None:
                span.update(report.as_dict())
        if self.params.legality_gate and not report.legal:
            raise LegalityError(stage, report)
        return report

    # ------------------------------------------------------------------
    def run(self, on_iteration=None,
            resume_state: Optional[dict] = None) -> PlacementResult:
        """Run the flow.

        ``on_iteration(placer, info)`` is forwarded to every GP round
        (see :meth:`GlobalPlacer.place`): the checkpoint/telemetry hook
        of ``repro.runner``.  ``resume_state`` continues an interrupted
        GP loop from a ``capture_loop_state`` dict; resuming is only
        supported for the plain (non-routability) flow, where the GP
        trajectory is a single uninterrupted loop.
        """
        params = self.params
        db = self.db
        times = StageTimes()

        if params.routability:
            if resume_state is not None:
                raise ValueError(
                    "resume is not supported in routability mode: the "
                    "inflation loop mutates cell sizes between GP rounds"
                )
            gp_result, route_info = self._routability_global_place(
                times, on_iteration=on_iteration,
            )
        elif params.multilevel_levels > 1:
            from repro.core.multilevel import multilevel_place

            start = time.perf_counter()
            with trace_span("stage.gp",
                            multilevel=params.multilevel_levels) as span:
                gp_result = multilevel_place(
                    db, params, fences=self.fences,
                    on_iteration=on_iteration, resume_state=resume_state,
                )
                if span is not None:
                    span["iterations"] = gp_result.iterations
                    span["converged"] = gp_result.converged
                    span["levels"] = len(gp_result.levels or ())
            times.global_place = time.perf_counter() - start
            route_info = None
        else:
            start = time.perf_counter()
            with trace_span("stage.gp") as span:
                placer = GlobalPlacer(db, params, fences=self.fences)
                gp_result = placer.place(on_iteration=on_iteration,
                                         resume_state=resume_state)
                if span is not None:
                    span["iterations"] = gp_result.iterations
                    span["converged"] = gp_result.converged
            times.global_place = time.perf_counter() - start
            route_info = None

        x, y = gp_result.x.copy(), gp_result.y.copy()
        hpwl_global = db.hpwl(x, y)

        hpwl_legal = hpwl_global
        legality = None
        if params.legalize:
            start = time.perf_counter()
            with trace_span("stage.lg"):
                x, y = legalize(db, x, y, fences=self.fences)
            times.legalize = time.perf_counter() - start
            hpwl_legal = db.hpwl(x, y)
            legality = self._check_stage("legalize", x, y)

        hpwl_final = hpwl_legal
        dp_stats = None
        if params.legalize and params.detailed:
            start = time.perf_counter()
            with trace_span("stage.dp"):
                dp = DetailedPlacer(db, passes=params.detailed_passes,
                                    fences=self.fences)
                x, y, dp_stats = dp.run(x, y)
            times.detailed = time.perf_counter() - start
            hpwl_final = db.hpwl(x, y)
            legality = self._check_stage("detailed", x, y)

        db.set_positions(x, y)

        rc = None
        shpwl = None
        rounds = 0
        router_calls = 0
        if route_info is not None:
            rounds, router_calls = route_info
            rc, shpwl = self._final_route_metrics(x, y, times)

        return PlacementResult(
            x=x, y=y,
            hpwl_global=hpwl_global,
            hpwl_legal=hpwl_legal,
            hpwl_final=hpwl_final,
            overflow=gp_result.overflow,
            iterations=gp_result.iterations,
            times=times,
            legality=legality,
            dp_stats=dp_stats,
            rc=rc,
            shpwl=shpwl,
            inflation_rounds=rounds,
            router_calls=router_calls,
            recoveries=gp_result.recoveries,
            diverged=gp_result.diverged,
            best_hpwl=gp_result.best_hpwl,
            gp_levels=gp_result.levels,
        )

    # ------------------------------------------------------------------
    def _routability_global_place(self, times: StageTimes,
                                  on_iteration=None):
        """GP with the cell-inflation loop of Section III-F."""
        from repro.route.inflation import apply_inflation, inflation_ratio_map
        from repro.route.router import GlobalRouter

        params = self.params
        db = self.db
        original_width = db.cell_width.copy()
        total_cell_area = db.total_movable_area
        router = None
        router_calls = 0
        rounds = 0
        warm = None
        # one monitor spans every round: plateau/checkpoint references
        # reset per round, the divergence anchor carries across rounds
        monitor = ConvergenceMonitor(
            divergence_ratio=params.divergence_ratio,
            plateau_patience=params.plateau_patience,
            overflow_tol=params.overflow_improve_tol,
            stop_overflow=params.stop_overflow,
        )
        recoveries = 0
        try:
            while True:
                placer = GlobalPlacer(db, params, fences=self.fences)
                if rounds > 0:
                    placer.lambda_period = params.inflation_lambda_period
                if warm is not None:
                    placer.set_positions(*warm)
                start = time.perf_counter()
                with trace_span("stage.gp", round=rounds):
                    if rounds < params.inflation_max_rounds:
                        # run down to the inflation trigger overflow (20%)
                        result = placer.place(
                            stop_overflow=params.inflation_overflow_trigger,
                            monitor=monitor, on_iteration=on_iteration,
                        )
                    else:
                        result = placer.place(monitor=monitor,
                                              on_iteration=on_iteration)
                times.global_place += time.perf_counter() - start
                recoveries += result.recoveries

                if rounds >= params.inflation_max_rounds:
                    result.recoveries = recoveries
                    return result, (rounds, router_calls)

                if router is None:
                    router = self._make_router(result.x, result.y)
                start = time.perf_counter()
                with trace_span("stage.route", round=rounds):
                    routing = router.route(result.x, result.y)
                times.global_route += time.perf_counter() - start
                router_calls += 1

                ratios = inflation_ratio_map(
                    routing.tile_ratio_map,
                    params.inflation_exponent,
                    params.inflation_max_ratio,
                )
                added = apply_inflation(
                    db, routing.grid.tiles, ratios,
                    x=result.x, y=result.y,
                    whitespace_cap=params.inflation_whitespace_cap,
                )
                if added < params.inflation_stop_ratio * total_cell_area:
                    # converged: warm-restart the same placer (rebind +
                    # momentum restart) and finish placement to target
                    placer.lambda_period = (
                        params.inflation_lambda_period if rounds else 1
                    )
                    placer.set_positions(result.x, result.y)
                    start = time.perf_counter()
                    with trace_span("stage.gp", round=rounds, final=True):
                        result = placer.place(monitor=monitor,
                                              on_iteration=on_iteration)
                    times.global_place += time.perf_counter() - start
                    recoveries += result.recoveries
                    result.recoveries = recoveries
                    return result, (rounds, router_calls)
                rounds += 1
                warm = (result.x, result.y)
        finally:
            db.cell_width = original_width

    def _make_router(self, x=None, y=None):
        """Build the global router, auto-calibrating capacity if asked."""
        from repro.route.router import GlobalRouter, calibrate_capacity

        params = self.params
        if self._route_capacity is None:
            self._route_capacity = calibrate_capacity(
                self.db, params.route_num_tiles, params.route_num_layers,
                x, y,
            )
        return GlobalRouter(
            self.db, params.route_num_tiles, params.route_num_layers,
            self._route_capacity,
        )

    def _final_route_metrics(self, x, y, times: StageTimes):
        """Route the final placement to report RC and sHPWL (Table V)."""
        router = self._make_router(x, y)
        start = time.perf_counter()
        with trace_span("stage.route", final=True):
            routing = router.route(x, y)
        times.global_route += time.perf_counter() - start
        hpwl = self.db.hpwl(x, y)
        return routing.rc, scaled_hpwl(hpwl, routing.rc)
