"""Kernel global-placement loop (the "Kernel GP iterations" of Fig. 2(b)).

Builds the extended position vector (movable cells + fillers), the
wirelength and density operators, and runs gradient descent with gamma
annealing and density-weight updating until the overflow target is met.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import (
    ConvergenceMonitor,
    IterationStatus,
    PlacerSnapshot,
    snapshot_from_state,
    snapshot_state_dict,
)
from repro.core.density_weight import DensityWeight
from repro.core.gamma import GammaScheduler
from repro.core.initial_place import (
    compute_fillers,
    random_center_init,
    uniform_filler_init,
)
from repro.core.objective import PlacementObjective
from repro.core.params import PlacementParams
from repro.geometry.bins import BinGrid
from repro.netlist.database import PlacementDB
from repro.nn.optim import (
    SGD,
    Adam,
    ConjugateGradient,
    ExponentialLR,
    NesterovLineSearch,
    RMSProp,
)
from repro.nn.tape import TapeInvalidated, capture
from repro.nn.tensor import Parameter
from repro.ops.density_op import ElectricDensity
from repro.ops.density_overflow import density_overflow, fixed_free_area
from repro.ops.lse_wirelength import LogSumExpWirelength
from repro.ops.wa_wirelength import WeightedAverageWirelength
from repro.obs.trace import trace_span
from repro.perf.profiler import profiled
from repro.perf.workspace import NullWorkspace, Workspace


@dataclass
class GlobalPlaceResult:
    """Outcome of one global-placement run."""

    x: np.ndarray
    y: np.ndarray
    hpwl: float
    overflow: float
    iterations: int
    runtime: float
    converged: bool
    hpwl_trace: list[float] = field(default_factory=list)
    overflow_trace: list[float] = field(default_factory=list)
    #: the loop hit the divergence/NaN guard and its recovery budget
    diverged: bool = False
    #: checkpoint rollbacks performed during the run
    recoveries: int = 0
    #: minimum finite HPWL observed across the trace
    best_hpwl: float = math.nan
    #: per-level outcome dicts when this result came out of the
    #: multilevel cascade (coarsest first); None for a flat run
    levels: list | None = None


class GlobalPlacer:
    """ePlace-style nonlinear global placement on the nn substrate."""

    def __init__(self, db: PlacementDB, params: PlacementParams | None = None,
                 wirelength_factory=None, fences=None):
        """``wirelength_factory(db, gamma, dtype) -> Module`` plugs in a
        custom wirelength operator (the paper's extensibility story:
        new objectives are new OPs); default follows ``params.wirelength``.

        ``fences`` is an optional list of
        :class:`~repro.core.fence.FenceRegion`: each fence gets its own
        electric field (Section III-G) and its cells are clamped inside
        it.  Fences disable filler cells.
        """
        self.db = db
        self.params = params or PlacementParams()
        self.wirelength_factory = wirelength_factory
        self.fences = list(fences) if fences else None
        self.rng = np.random.default_rng(self.params.seed)
        num_bins = self.params.resolve_num_bins(db.num_movable)
        self.grid = BinGrid(db.region, num_bins, num_bins)
        self.gamma_schedule = GammaScheduler(
            self.grid, self.params.gamma_factor
        )
        self._build_variables()
        self._build_ops()
        #: lambda update period (>1 during routability rounds, III-F)
        self.lambda_period = 1
        # the optimizer persists across place() calls so warm restarts
        # (inflation rounds, post-rollback continuation) reuse it via
        # rebind()/reset_momentum() instead of silently rebuilding
        self._optimizer = None
        self._scheduler = None
        # live references into the running place() loop; set per
        # iteration so capture_loop_state() (checkpointing) can reach
        # every piece of loop state from an on_iteration callback
        self._loop_ctx: dict | None = None
        # captured objective tape (repro.nn.tape): recorded on the first
        # closure evaluation of a place() call, replayed afterwards, and
        # dropped on every structural event (rollback, warm restart,
        # resume, set_positions) so the next closure recaptures
        self._tape = None
        self._capture_ok = True
        #: extra keys folded into every capture_loop_state() dict; the
        #: multilevel cascade driver stores its active level here so a
        #: checkpoint taken mid-cascade records where to resume
        self.checkpoint_extra: dict = {}

    # ------------------------------------------------------------------
    def _build_variables(self) -> None:
        params = self.params
        db = self.db
        x, y = random_center_init(db, params.init_noise_ratio, self.rng)
        if params.use_fillers and self.fences is None:
            count, fw, fh = compute_fillers(db, params.target_density)
        else:
            count, fw, fh = 0, 0.0, 0.0
        self.num_fillers = count
        self.filler_width = fw
        self.filler_height = fh
        if count:
            fx, fy = uniform_filler_init(count, db, fw, fh, self.rng)
            x = np.concatenate([x, fx])
            y = np.concatenate([y, fy])
        self.pos = Parameter(
            np.concatenate([x, y]), dtype=params.np_dtype()
        )
        # per-entry clamp bounds (fixed cells clamp to themselves)
        widths = np.concatenate([
            db.cell_width, np.full(count, fw),
        ])
        heights = np.concatenate([
            db.cell_height, np.full(count, fh),
        ])
        r = db.region
        n = db.num_cells + count
        # clamp bounds share the position dtype: float64 bounds would
        # silently upcast float32 positions on every projection
        self._lo = np.empty(2 * n, dtype=params.np_dtype())
        self._hi = np.empty(2 * n, dtype=params.np_dtype())
        self._lo[:n] = r.xl
        self._hi[:n] = np.maximum(r.xh - widths, r.xl)
        self._lo[n:] = r.yl
        self._hi[n:] = np.maximum(r.yh - heights, r.yl)
        frozen = np.concatenate([~db.movable, np.zeros(count, dtype=bool)])
        frozen2 = np.concatenate([frozen, frozen])
        pos0 = self.pos.data
        self._lo[frozen2] = pos0[frozen2]
        self._hi[frozen2] = pos0[frozen2]
        if self.fences is not None:
            from repro.core.fence import fence_clamp_bounds

            # fence bounds replace the die bounds for fenced cells
            # (count == 0 when fences are active, so shapes match)
            dtype = params.np_dtype()
            fence_lo, fence_hi = fence_clamp_bounds(db, self.fences)
            self._lo = np.maximum(self._lo, fence_lo).astype(dtype,
                                                             copy=False)
            self._hi = np.minimum(self._hi, fence_hi).astype(dtype,
                                                             copy=False)
            self._hi = np.maximum(self._hi, self._lo)
            # start every cell inside its fence
            self.pos.data = self._clamp(self.pos.data)

    def _build_ops(self) -> None:
        params = self.params
        dtype = params.np_dtype()
        pooled = params.workspace_pooling
        # one workspace shared by every op of this placer: kernels use
        # disjoint buffer-name prefixes, so pools never alias
        self.ws = Workspace() if pooled else NullWorkspace()
        self._free_area = None  # lazy fixed-cell free-area map (overflow)
        if self.wirelength_factory is not None:
            wl_op = self.wirelength_factory(
                self.db, self.gamma_schedule(1.0), dtype
            )
        elif params.wirelength == "wa":
            wl_op = WeightedAverageWirelength(
                self.db, gamma=self.gamma_schedule(1.0),
                strategy=params.wirelength_strategy, dtype=dtype,
                pooled=pooled, workspace=self.ws,
                ignore_net_degree=params.ignore_net_degree,
            )
        elif params.wirelength == "lse":
            wl_op = LogSumExpWirelength(
                self.db, gamma=self.gamma_schedule(1.0), dtype=dtype,
                pooled=pooled, workspace=self.ws,
                ignore_net_degree=params.ignore_net_degree,
            )
        else:
            raise ValueError(f"unknown wirelength model {params.wirelength!r}")
        if self.fences is not None:
            from repro.core.fence import MultiRegionDensity

            density_op = MultiRegionDensity(
                self.db, self.fences,
                num_bins=max(self.grid.nx // 2, 8),
                dct_impl=params.dct_impl,
            )
        else:
            density_op = ElectricDensity(
                self.db, self.grid,
                num_fillers=self.num_fillers,
                filler_width=self.filler_width,
                filler_height=self.filler_height,
                strategy=params.density_strategy,
                dct_impl=params.dct_impl,
                dtype=dtype,
                pooled=pooled, workspace=self.ws,
            )
        self.objective = PlacementObjective(wl_op, density_op)

    def _build_optimizer(self):
        params = self.params
        scale = 0.5 * (self.db.region.width + self.db.region.height)
        name = params.optimizer
        if name == "nesterov":
            opt = NesterovLineSearch([self.pos], lr=0.01 * scale)
        elif name == "adam":
            opt = Adam([self.pos], lr=params.learning_rate * scale)
        elif name == "sgd":
            opt = SGD([self.pos], lr=params.learning_rate * scale,
                      momentum=params.momentum)
        elif name == "rmsprop":
            opt = RMSProp([self.pos], lr=params.learning_rate * scale)
        elif name == "cg":
            opt = ConjugateGradient([self.pos], lr=params.learning_rate * scale)
        else:
            raise ValueError(f"unknown optimizer {name!r}")
        scheduler = None
        if params.lr_decay < 1.0 and name in ("adam", "sgd", "rmsprop"):
            scheduler = ExponentialLR(opt, params.lr_decay)
        return opt, scheduler

    # ------------------------------------------------------------------
    def _clamp(self, flat: np.ndarray) -> np.ndarray:
        return np.minimum(np.maximum(flat, self._lo), self._hi)

    def _positions(self) -> tuple[np.ndarray, np.ndarray]:
        n = self.db.num_cells + self.num_fillers
        data = self.pos.data
        return (
            np.asarray(data[:self.db.num_cells], dtype=np.float64),
            np.asarray(data[n:n + self.db.num_cells], dtype=np.float64),
        )

    def hpwl(self) -> float:
        with profiled("gp.hpwl"):
            x, y = self._positions()
            return self.db.hpwl(x, y)

    def overflow(self) -> float:
        with profiled("gp.overflow"):
            if self._free_area is None:
                # fixed cells never move: rasterize them once
                self._free_area = fixed_free_area(self.db, self.grid)
            x, y = self._positions()
            return density_overflow(
                self.db, self.grid, x, y, self.params.target_density,
                free_area=self._free_area,
                workspace=self.ws if self.params.workspace_pooling else None,
            )

    def _init_density_weight(self) -> DensityWeight:
        weight = DensityWeight(
            mu_min=self.params.mu_min,
            mu_max=self.params.mu_max,
            ref_delta_hpwl=self.params.ref_delta_hpwl,
            tcad_tweak=self.params.tcad_mu_tweak,
        )
        self.pos.zero_grad()
        wl = self.objective.wirelength(self.pos)
        wl.backward()
        wl_grad = self.pos.grad.copy()
        self.pos.zero_grad()
        density = self.objective.density(self.pos)
        density.backward()
        density_grad = self.pos.grad.copy()
        self.pos.zero_grad()
        weight.initialize(wl_grad, density_grad,
                          scale=self.params.density_weight_scale)
        return weight

    # ------------------------------------------------------------------
    def _capture_snapshot(self, iteration: int, hpwl: float, overflow: float,
                          optimizer, scheduler, weight) -> PlacerSnapshot:
        """Full checkpoint: positions + optimizer/lambda/gamma state."""
        return PlacerSnapshot(
            iteration=iteration, hpwl=hpwl, overflow=overflow,
            pos=self.pos.data.copy(),
            optimizer_state=optimizer.state_dict(),
            scheduler_state=(None if scheduler is None
                             else scheduler.state_dict()),
            weight_state=weight.state_dict(),
            gamma=self.objective.gamma,
        )

    def invalidate_tape(self) -> None:
        """Drop the captured objective tape (recapture on next closure)."""
        self._tape = None
        self._capture_ok = True

    def _restore_snapshot(self, snap: PlacerSnapshot, optimizer, scheduler,
                          weight, lambda_damping: float = 1.0) -> None:
        """Roll the loop back to ``snap`` exactly, optionally damping
        lambda so the retry does not diverge the same way again."""
        self.invalidate_tape()
        self.pos.data = snap.pos.copy()
        if snap.optimizer_state is not None:
            optimizer.load_state_dict(snap.optimizer_state)
        if scheduler is not None and snap.scheduler_state is not None:
            scheduler.load_state_dict(snap.scheduler_state)
        if snap.weight_state is not None:
            weight.load_state_dict(snap.weight_state)
            weight.value *= lambda_damping
            self.objective.density_weight = weight.value
        if math.isfinite(snap.gamma):
            self.objective.gamma = snap.gamma
        optimizer.reset_momentum()

    # ------------------------------------------------------------------
    def capture_loop_state(self) -> dict:
        """Serializable snapshot of the *entire* GP loop state.

        Unlike :class:`PlacerSnapshot` (the in-memory rollback target)
        this also carries the convergence monitor, the traces, the best
        checkpoints and the recovery budget, so a killed run restarted
        from this dict via ``place(resume_state=...)`` replays the
        remaining iterations bit-exactly.  Only valid while ``place()``
        is running — call it from an ``on_iteration`` callback.
        """
        ctx = self._loop_ctx
        if ctx is None:
            raise RuntimeError(
                "capture_loop_state() is only valid inside place(); "
                "call it from an on_iteration callback"
            )
        scheduler = ctx["scheduler"]
        state = dict(self.checkpoint_extra)
        state.update({
            "iteration": ctx["iteration"],
            "hpwl": ctx["hpwl"],
            "overflow": ctx["overflow"],
            "pos": self.pos.data.copy(),
            "gamma": self.objective.gamma,
            "density_weight": self.objective.density_weight,
            "optimizer": ctx["optimizer"].state_dict(),
            "scheduler": None if scheduler is None else scheduler.state_dict(),
            "weight": ctx["weight"].state_dict(),
            "monitor": ctx["monitor"].state_dict(),
            "best_snap": snapshot_state_dict(ctx["best_snap"]),
            "best_wl_snap": snapshot_state_dict(ctx["best_wl_snap"]),
            "hpwl_trace": list(ctx["hpwl_trace"]),
            "overflow_trace": list(ctx["overflow_trace"]),
            "best_hpwl": ctx["best_hpwl"],
            "recoveries": ctx["recoveries"],
        })
        return state

    def _restore_loop_state(self, state: dict, monitor: ConvergenceMonitor):
        """Rebuild every loop variable from :meth:`capture_loop_state`."""
        self.invalidate_tape()
        params = self.params
        if self._optimizer is None:
            self._optimizer, self._scheduler = self._build_optimizer()
        optimizer, scheduler = self._optimizer, self._scheduler
        self.pos.data = np.asarray(
            state["pos"], dtype=params.np_dtype()
        ).copy()
        optimizer.load_state_dict(state["optimizer"])
        if scheduler is not None and state["scheduler"] is not None:
            scheduler.load_state_dict(state["scheduler"])
        weight = DensityWeight(
            mu_min=params.mu_min, mu_max=params.mu_max,
            ref_delta_hpwl=params.ref_delta_hpwl,
            tcad_tweak=params.tcad_mu_tweak,
        )
        weight.load_state_dict(state["weight"])
        monitor.load_state_dict(state["monitor"])
        self.objective.gamma = float(state["gamma"])
        self.objective.density_weight = float(state["density_weight"])
        return (
            optimizer, scheduler, weight,
            float(state["hpwl"]), float(state["overflow"]),
            list(state["hpwl_trace"]), list(state["overflow_trace"]),
            float(state["best_hpwl"]), int(state["recoveries"]),
            snapshot_from_state(state["best_snap"]),
            snapshot_from_state(state["best_wl_snap"]),
            int(state["iteration"]) + 1,
        )

    # ------------------------------------------------------------------
    def place(self, max_iters: int | None = None,
              stop_overflow: float | None = None,
              monitor: ConvergenceMonitor | None = None,
              on_iteration=None,
              resume_state: dict | None = None) -> GlobalPlaceResult:
        """Run the kernel GP loop to convergence.

        Every iteration is classified by a :class:`ConvergenceMonitor`
        (pass one in to share statistics across warm-started rounds);
        the best iterate is checkpointed and divergence or a non-finite
        loss/gradient rolls back to it with a damped density weight, up
        to ``params.max_recoveries`` times, before giving up gracefully.
        The returned positions are never worse than the best checkpoint.

        ``on_iteration(placer, info)`` is invoked after every completed
        iteration with ``info = {iteration, hpwl, overflow, status,
        recoveries}``; the callback may call :meth:`capture_loop_state`
        to checkpoint the loop, and an exception it raises aborts the
        run (the cooperative kill/timeout mechanism of ``repro.runner``).

        ``resume_state`` (a dict from :meth:`capture_loop_state`)
        continues an interrupted run from its checkpointed iteration;
        given identical database and parameters the remaining
        iterations replay bit-exactly.
        """
        params = self.params
        max_iters = params.max_global_iters if max_iters is None else max_iters
        stop = params.stop_overflow if stop_overflow is None else stop_overflow
        start = time.perf_counter()

        if monitor is None:
            monitor = ConvergenceMonitor(
                divergence_ratio=params.divergence_ratio,
                plateau_patience=params.plateau_patience,
                overflow_tol=params.overflow_improve_tol,
                stop_overflow=stop,
            )
        elif resume_state is None:
            monitor.new_round(stop_overflow=stop)

        if resume_state is not None:
            (optimizer, scheduler, weight, hpwl, overflow,
             hpwl_trace, overflow_trace, best_hpwl, recoveries,
             best_snap, best_wl_snap, first_iter) = \
                self._restore_loop_state(resume_state, monitor)
        else:
            overflow = self.overflow()
            self.objective.gamma = self.gamma_schedule(overflow)
            weight = self._init_density_weight()
            self.objective.density_weight = weight.value
            if self._optimizer is None:
                self._optimizer, self._scheduler = self._build_optimizer()
            else:
                # warm restart: positions may have moved externally since
                # the last round (inflation, set_positions), so drop
                # value-derived caches and restart the momentum sequence
                self._optimizer.rebind()
                self._optimizer.reset_momentum()
            optimizer, scheduler = self._optimizer, self._scheduler

            hpwl_trace = []
            overflow_trace = []
            best_hpwl = math.inf
            recoveries = 0

            # iteration-0 checkpoint: there is always a sane state to
            # return or roll back to, even if the first step blows up
            hpwl = self.hpwl()
            monitor.observe(0, hpwl, overflow)
            best_snap = self._capture_snapshot(0, hpwl, overflow,
                                               optimizer, scheduler, weight)
            # lightweight best-wirelength fallback (positions only):
            # what a diverged run hands back when no checkpoint can be
            # trusted
            best_wl_snap = PlacerSnapshot(0, hpwl, overflow, best_snap.pos)
            first_iter = 1

        self.invalidate_tape()
        # capture freezes the Python control flow of the first forward,
        # so a user-supplied wirelength module (which may branch per
        # call) forces eager evaluation
        graph_capture = (params.graph_capture
                         and self.wirelength_factory is None)

        def eager_closure():
            obj = self.objective(self.pos)
            obj.backward()
            return obj

        def closure():
            self.pos.zero_grad()
            tape = self._tape
            if tape is not None:
                with profiled("gp.replay"):
                    try:
                        loss = tape.replay()
                    except TapeInvalidated:
                        # a structural event slipped past the explicit
                        # invalidation points: recapture below
                        self._tape = tape = None
                if tape is not None:
                    obj = self.objective
                    obj.last_wirelength = tape.watched("wirelength")
                    obj.last_density = tape.watched("density")
                    return loss
            if not graph_capture or not self._capture_ok:
                with profiled("gp.eager"):
                    return eager_closure()
            with profiled("gp.graph_build"):
                loss, self._tape = capture(eager_closure)
            # an untapeable graph (e.g. a custom wirelength op that is
            # not capture-safe) permanently falls back to eager mode
            self._capture_ok = self._tape is not None
            return loss

        converged = False
        diverged = False
        iteration = first_iter - 1

        for iteration in range(first_iter, max_iters + 1):
            with trace_span("gp.iteration",
                            iteration=iteration) as _span:
                with profiled("gp.step"):
                    loss = optimizer.step(closure)
                    optimizer.project(self._clamp)
                    if scheduler is not None:
                        scheduler.step()

                if np.all(np.isfinite(self.pos.data)):
                    hpwl = self.hpwl()
                    overflow = self.overflow()
                else:
                    # poisoned step: the overflow scatter would crash casting
                    # NaN coordinates to bin indices, so skip the metrics and
                    # let the monitor flag the iterate as non-finite
                    hpwl = math.nan
                    overflow = math.nan
                hpwl_trace.append(hpwl)
                overflow_trace.append(overflow)
                if math.isfinite(hpwl):
                    best_hpwl = min(best_hpwl, hpwl)

                status = monitor.observe(
                    iteration, hpwl, overflow,
                    loss=None if loss is None else float(loss.item()),
                    grad=self.pos.grad, pos=self.pos.data,
                )
                if _span is not None:
                    # NaN is not valid JSON: non-finite iterates carry
                    # their status, finite ones the actual metrics
                    if math.isfinite(hpwl):
                        _span["hpwl"] = hpwl
                        _span["overflow"] = overflow
                    _span["status"] = status.value
                if status is IterationStatus.NON_FINITE or (
                    status is IterationStatus.DIVERGING
                    and iteration > params.min_global_iters
                ):
                    if (params.enable_recovery
                            and recoveries < params.max_recoveries):
                        with profiled("gp.rollback"):
                            self._restore_snapshot(
                                best_snap, optimizer, scheduler, weight,
                                lambda_damping=params.recovery_lambda_damping,
                            )
                        monitor.notify_rollback(best_snap.hpwl)
                        recoveries += 1
                        if params.verbose:
                            print(
                                f"[GP] iter {iteration:4d} {status.value}: "
                                f"rolled back to iter {best_snap.iteration} "
                                f"(hpwl {best_snap.hpwl:.4e}), lambda "
                                f"{weight.value:.3g}"
                            )
                        self._loop_ctx = dict(
                            iteration=iteration, hpwl=best_snap.hpwl,
                            overflow=best_snap.overflow, optimizer=optimizer,
                            scheduler=scheduler, weight=weight, monitor=monitor,
                            best_snap=best_snap, best_wl_snap=best_wl_snap,
                            hpwl_trace=hpwl_trace, overflow_trace=overflow_trace,
                            best_hpwl=best_hpwl, recoveries=recoveries,
                        )
                        if on_iteration is not None:
                            on_iteration(self, {
                                "iteration": iteration, "hpwl": best_snap.hpwl,
                                "overflow": best_snap.overflow,
                                "status": status.value,
                                "recoveries": recoveries,
                            })
                        continue
                    diverged = True
                    break
                if monitor.progress_improved:
                    with profiled("gp.snapshot"):
                        best_snap = self._capture_snapshot(
                            iteration, hpwl, overflow,
                            optimizer, scheduler, weight,
                        )
                if monitor.wirelength_improved:
                    best_wl_snap = PlacerSnapshot(
                        iteration, hpwl, overflow, self.pos.data.copy(),
                    )

                self.objective.gamma = self.gamma_schedule(overflow)
                if iteration % self.lambda_period == 0:
                    self.objective.density_weight = weight.update(hpwl)

                if params.verbose and iteration % 50 == 0:
                    print(
                        f"[GP] iter {iteration:4d} hpwl {hpwl:.4e} "
                        f"overflow {overflow:.4f} gamma "
                        f"{self.objective.gamma:.3g} lambda {weight.value:.3g}"
                    )
                # the loop context is refreshed after the gamma/lambda
                # updates so a checkpoint captured here resumes directly
                # into the next iteration
                self._loop_ctx = dict(
                    iteration=iteration, hpwl=hpwl, overflow=overflow,
                    optimizer=optimizer, scheduler=scheduler, weight=weight,
                    monitor=monitor, best_snap=best_snap,
                    best_wl_snap=best_wl_snap, hpwl_trace=hpwl_trace,
                    overflow_trace=overflow_trace, best_hpwl=best_hpwl,
                    recoveries=recoveries,
                )
                if on_iteration is not None:
                    on_iteration(self, {
                        "iteration": iteration, "hpwl": hpwl,
                        "overflow": overflow, "status": status.value,
                        "recoveries": recoveries,
                    })
                if overflow <= stop and iteration >= params.min_global_iters:
                    converged = True
                    break
                # plateau guard: overflow stopped improving well above the
                # target — further lambda growth only degrades wirelength
                if monitor.plateau_exceeded and \
                        iteration >= params.min_global_iters:
                    break

        # never hand back a worse answer than the best checkpoint: a
        # diverged run falls back to the lowest-wirelength iterate, any
        # other run to the best (overflow-then-wirelength) checkpoint
        final_hpwl = self.hpwl()
        chosen = None
        if diverged:
            chosen = best_wl_snap
        elif (best_snap.hpwl < final_hpwl
              and best_snap.overflow <= (max(overflow, stop)
                                         + params.overflow_improve_tol)):
            chosen = best_snap
        if chosen is not None and (diverged or chosen.hpwl < final_hpwl):
            self.pos.data = chosen.pos.copy()
            optimizer.rebind()
            final_hpwl = self.hpwl()
            overflow = self.overflow()

        self._loop_ctx = None
        x, y = self._positions()
        return GlobalPlaceResult(
            x=x, y=y,
            hpwl=final_hpwl,
            overflow=overflow,
            iterations=iteration,
            runtime=time.perf_counter() - start,
            converged=converged,
            hpwl_trace=hpwl_trace,
            overflow_trace=overflow_trace,
            diverged=diverged,
            recoveries=recoveries,
            best_hpwl=min(best_hpwl, final_hpwl),
        )

    def set_positions(self, x: np.ndarray, y: np.ndarray) -> None:
        """Warm-start the cell coordinates (e.g. between inflation rounds)."""
        self.invalidate_tape()
        n = self.db.num_cells + self.num_fillers
        data = self.pos.data
        data[:self.db.num_cells] = np.asarray(x, dtype=data.dtype)
        data[n:n + self.db.num_cells] = np.asarray(y, dtype=data.dtype)
        self.pos.data = self._clamp(data)
        if self._optimizer is not None:
            # cached solver state (Lipschitz estimate, u/v iterates,
            # conjugate direction) refers to the old positions
            self._optimizer.rebind()

    def write_back(self) -> None:
        """Copy the optimized movable positions into the database."""
        x, y = self._positions()
        movable = self.db.movable
        self.db.cell_x[movable] = x[movable]
        self.db.cell_y[movable] = y[movable]
