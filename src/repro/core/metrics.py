"""Quality metrics and reporting helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.bins import BinGrid
from repro.netlist.database import PlacementDB
from repro.ops.density_overflow import density_overflow


@dataclass
class PlacementSummary:
    """Headline numbers for a placement solution."""

    hpwl: float
    overflow: float
    num_cells: int
    num_nets: int
    num_pins: int
    utilization: float


def placement_summary(db: PlacementDB, x: np.ndarray | None = None,
                      y: np.ndarray | None = None,
                      target_density: float = 1.0,
                      num_bins: int = 64) -> PlacementSummary:
    """Compute the headline metrics at the given (or stored) placement."""
    grid = BinGrid(db.region, num_bins, num_bins)
    return PlacementSummary(
        hpwl=db.hpwl(x, y),
        overflow=density_overflow(db, grid, x, y, target_density),
        num_cells=db.num_cells,
        num_nets=db.num_nets,
        num_pins=db.num_pins,
        utilization=db.utilization,
    )


def scaled_hpwl(hpwl: float, rc: float) -> float:
    """DAC 2012 scaled wirelength, eq. (20): HPWL * (1 + 0.03*(RC-100))."""
    return hpwl * (1.0 + 0.03 * (rc - 100.0))


def _finite_or_none(value):
    if value is None:
        return None
    value = float(value)
    return value if np.isfinite(value) else None


def placement_result_metrics(result) -> dict:
    """Machine-readable metrics for one flow run (JSON-safe).

    This is *the* metrics schema of the toolkit: ``place --json``
    emits it and the ``repro.runner`` run store persists it as
    ``metrics.json``, so scripted consumers see one format everywhere.
    ``result`` is a :class:`repro.core.PlacementResult`.
    """
    times = result.times
    out = {
        "hpwl": {
            "global": float(result.hpwl_global),
            "legal": float(result.hpwl_legal),
            "final": float(result.hpwl_final),
            "best_gp": _finite_or_none(result.best_hpwl),
        },
        "overflow": float(result.overflow),
        "iterations": int(result.iterations),
        "recoveries": int(result.recoveries),
        "diverged": bool(result.diverged),
        "legal": (None if result.legality is None
                  else bool(result.legality.legal)),
        "legality": (None if result.legality is None
                     else result.legality.as_dict()),
        "runtime": {
            "global_place": float(times.global_place),
            "global_route": float(times.global_route),
            "legalize": float(times.legalize),
            "detailed": float(times.detailed),
            "total": float(times.total),
        },
        "routability": {
            "rc": _finite_or_none(result.rc),
            "shpwl": _finite_or_none(result.shpwl),
            "inflation_rounds": int(result.inflation_rounds),
            "router_calls": int(result.router_calls),
        },
    }
    # multilevel cascade: per-level outcomes (only present when the
    # cascade ran, so flat-run metrics keep their historical shape)
    levels = getattr(result, "gp_levels", None)
    if levels:
        out["gp_levels"] = [dict(info) for info in levels]
    return out


def placement_summary_metrics(summary: PlacementSummary,
                              legal: bool | None = None) -> dict:
    """The static-analysis subset of the run-store schema (``report``).

    Shares key names with :func:`placement_result_metrics` where the
    quantities coincide so downstream tooling can read either.
    """
    return {
        "hpwl": {"final": float(summary.hpwl)},
        "overflow": float(summary.overflow),
        "legal": legal,
        "design": {
            "num_cells": int(summary.num_cells),
            "num_nets": int(summary.num_nets),
            "num_pins": int(summary.num_pins),
            "utilization": float(summary.utilization),
        },
    }
