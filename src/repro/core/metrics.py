"""Quality metrics and reporting helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.bins import BinGrid
from repro.netlist.database import PlacementDB
from repro.ops.density_overflow import density_overflow


@dataclass
class PlacementSummary:
    """Headline numbers for a placement solution."""

    hpwl: float
    overflow: float
    num_cells: int
    num_nets: int
    num_pins: int
    utilization: float


def placement_summary(db: PlacementDB, x: np.ndarray | None = None,
                      y: np.ndarray | None = None,
                      target_density: float = 1.0,
                      num_bins: int = 64) -> PlacementSummary:
    """Compute the headline metrics at the given (or stored) placement."""
    grid = BinGrid(db.region, num_bins, num_bins)
    return PlacementSummary(
        hpwl=db.hpwl(x, y),
        overflow=density_overflow(db, grid, x, y, target_density),
        num_cells=db.num_cells,
        num_nets=db.num_nets,
        num_pins=db.num_pins,
        utilization=db.utilization,
    )


def scaled_hpwl(hpwl: float, rc: float) -> float:
    """DAC 2012 scaled wirelength, eq. (20): HPWL * (1 + 0.03*(RC-100))."""
    return hpwl * (1.0 + 0.03 * (rc - 100.0))
