#!/usr/bin/env python
"""Write a custom wirelength operator (the paper's extensibility claim).

Section II-B: "researchers can concentrate on the development of
critical parts like low-level OPs".  This example implements a new
operator — quadratic (clique-model) wirelength — against the
``repro.nn.Function`` contract, plugs it into the unmodified global
placer, and compares against the built-in WA operator.

Run with::

    python examples/custom_op.py
"""

import numpy as np

from repro.benchgen import CircuitSpec, generate
from repro.core import GlobalPlacer, PlacementParams
from repro.nn import Function, Module, Tensor


class _QuadraticWL(Function):
    """sum over nets of sum_{pins i} (p_i - mean_net)^2, per axis."""

    def forward(self, pos, *, op):
        n = pos.shape[0] // 2
        grad = np.zeros_like(pos)
        total = 0.0
        for axis, offset in ((0, op.off_x), (1, op.off_y)):
            coords = pos[axis * n:axis * n + n]
            pins = coords[op.pin_cell] + offset
            seg = op.starts[:-1]
            sums = np.add.reduceat(pins, seg)
            means = sums / op.degree
            centered = pins - means[op.net_of_pin]
            total += float((centered * centered).sum())
            pin_grad = 2.0 * centered  # d/dp of (p - mean)^2, mean const
            cell_grad = np.bincount(op.pin_cell, weights=pin_grad,
                                    minlength=n)
            cell_grad[op.fixed_index] = 0.0
            grad[axis * n:axis * n + n] = cell_grad
        self.save_for_backward(grad)
        return np.asarray(total, dtype=pos.dtype)

    def backward(self, grad_output):
        (grad,) = self.saved_values
        return (np.asarray(grad_output) * grad,)


class QuadraticWirelength(Module):
    """Clique-model quadratic wirelength as a drop-in OP."""

    def __init__(self, db, gamma=1.0, dtype=np.float64):
        self.gamma = float(gamma)  # unused; kept for interface parity
        order = db.net2pin
        self.starts = db.net2pin_start
        self.pin_cell = db.pin_cell[order]
        self.off_x = db.pin_offset_x[order].astype(dtype)
        self.off_y = db.pin_offset_y[order].astype(dtype)
        self.degree = np.maximum(db.net_degree, 1).astype(dtype)
        self.net_of_pin = np.repeat(
            np.arange(db.num_nets, dtype=np.int64), db.net_degree
        )
        self.fixed_index = np.flatnonzero(~db.movable)

    def forward(self, pos: Tensor) -> Tensor:
        return _QuadraticWL.apply(pos, op=self)


def main() -> None:
    spec = CircuitSpec(name="customop", num_cells=600, utilization=0.6,
                       num_ios=24, seed=11)
    params = PlacementParams(max_global_iters=600)

    print("-- built-in weighted-average wirelength")
    db = generate(spec)
    wa = GlobalPlacer(db, params).place()
    print(f"   HPWL {wa.hpwl:,.0f} in {wa.iterations} iterations "
          f"({wa.runtime:.2f}s)")

    print("-- custom quadratic wirelength OP")
    db2 = generate(spec)
    placer = GlobalPlacer(
        db2, params,
        wirelength_factory=lambda d, gamma, dtype: QuadraticWirelength(
            d, gamma, dtype
        ),
    )
    quad = placer.place()
    print(f"   HPWL {quad.hpwl:,.0f} in {quad.iterations} iterations "
          f"({quad.runtime:.2f}s)")

    print(f"\n   quadratic/WA HPWL ratio: {quad.hpwl / wa.hpwl:.3f} "
          "(quadratic over-penalizes long nets, so WA should win)")


if __name__ == "__main__":
    main()
