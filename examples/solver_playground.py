#!/usr/bin/env python
"""Swap gradient-descent engines on the same design (Table IV's theme).

The paper's point: once placement is cast as "training", any stock
deep-learning optimizer drives it.  This example runs Nesterov (the
ePlace solver), Adam, SGD with momentum, RMSProp, and nonlinear CG on
one design and compares quality and runtime.

Run with::

    python examples/solver_playground.py
"""

from repro.benchgen import CircuitSpec, generate
from repro.core import DreamPlacer, PlacementParams

SOLVERS = {
    "nesterov": {},
    "adam": dict(optimizer="adam", learning_rate=0.01, lr_decay=0.995),
    "sgd": dict(optimizer="sgd", learning_rate=0.002, momentum=0.9,
                lr_decay=0.993),
    "rmsprop": dict(optimizer="rmsprop", learning_rate=0.004,
                    lr_decay=0.995),
    "cg": dict(optimizer="cg", learning_rate=0.05),
}


def main() -> None:
    spec = CircuitSpec(name="solvers", num_cells=800, utilization=0.6,
                       num_ios=32, seed=7)

    print(f"{'solver':>10} | {'HPWL':>12} | {'GP (s)':>8} | "
          f"{'iters':>6} | {'overflow':>8}")
    baseline_hpwl = None
    for name, overrides in SOLVERS.items():
        db = generate(spec)
        params = PlacementParams(max_global_iters=1200,
                                 detailed_passes=1, **overrides)
        result = DreamPlacer(db, params).run()
        if baseline_hpwl is None:
            baseline_hpwl = result.hpwl_final
        ratio = result.hpwl_final / baseline_hpwl
        print(f"{name:>10} | {result.hpwl_final:>12,.0f} | "
              f"{result.times.global_place:>8.2f} | "
              f"{result.iterations:>6} | {result.overflow:>8.3f} "
              f"(x{ratio:.3f} vs nesterov)")


if __name__ == "__main__":
    main()
