#!/usr/bin/env python
"""Quickstart: generate a small design, place it, report the metrics.

Run with::

    python examples/quickstart.py
"""

from repro.benchgen import CircuitSpec, generate
from repro.core import DreamPlacer, PlacementParams, placement_summary


def main() -> None:
    # 1. Build (or load) a circuit.  repro.bookshelf reads real ISPD
    #    benchmarks; here we synthesize a 1000-cell design.
    spec = CircuitSpec(
        name="quickstart",
        num_cells=1000,
        utilization=0.65,
        macro_area_fraction=0.05,
        num_macros=4,
        num_ios=32,
        seed=42,
    )
    db = generate(spec)
    print(f"design: {db}")
    print(f"region: {db.region}, utilization {db.utilization:.2f}")

    # 2. Configure the flow.  Defaults follow the paper (WA wirelength,
    #    electrostatic density, Nesterov with line search).
    params = PlacementParams(target_density=1.0, seed=1)

    # 3. Run global placement -> legalization -> detailed placement.
    result = DreamPlacer(db, params).run()

    print(f"\nglobal placement : HPWL {result.hpwl_global:,.0f} "
          f"(overflow {result.overflow:.3f}, "
          f"{result.iterations} iterations)")
    print(f"legalized        : HPWL {result.hpwl_legal:,.0f} "
          f"(+{100 * (result.hpwl_legal / result.hpwl_global - 1):.2f}%)")
    print(f"detailed         : HPWL {result.hpwl_final:,.0f} "
          f"({100 * (result.hpwl_final / result.hpwl_legal - 1):+.2f}%)")
    print(f"legal            : {result.legality.legal}")
    print(f"runtime          : GP {result.times.global_place:.2f}s, "
          f"LG {result.times.legalize:.2f}s, "
          f"DP {result.times.detailed:.2f}s")

    summary = placement_summary(db)
    print(f"\nfinal summary    : {summary}")

    # 4. Plot the result (no matplotlib needed).
    from repro.viz import write_placement_svg

    path = write_placement_svg(db, "quickstart_placement.svg")
    print(f"placement plot   : {path}")


if __name__ == "__main__":
    main()
