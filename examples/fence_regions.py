#!/usr/bin/env python
"""Fence regions with multiple electric fields (Section III-G).

The paper proposes implementing fence regions "by introducing multiple
electric fields, e.g., one for each region, to enable independent
spreading between regions."  This example constrains two cell groups to
disjoint fences, spreads each group inside its own electrostatic
system, and verifies the final placement respects the fences.

Run with::

    python examples/fence_regions.py
"""

import numpy as np

from repro.core.fence import (
    FenceRegion,
    MultiRegionDensity,
    fence_clamp_bounds,
)
from repro.geometry import PlacementRegion
from repro.netlist import CellKind, Netlist
from repro.nn import Parameter
from repro.nn.optim import NesterovLineSearch
from repro.ops.density_overflow import density_overflow
from repro.ops.wa_wirelength import WeightedAverageWirelength


def build_design(cells_per_group: int = 40):
    region = PlacementRegion(0, 0, 48, 48)
    netlist = Netlist("fenced")
    rng = np.random.default_rng(3)
    total = 2 * cells_per_group
    for i in range(total):
        netlist.add_cell(f"c{i}", float(rng.integers(1, 4)), 1.0,
                         CellKind.MOVABLE, x=24.0, y=24.0)
    # nets mostly within a group, some across (forcing a tradeoff)
    for e in range(total):
        a = int(rng.integers(total))
        group = a // cells_per_group
        if rng.random() < 0.8:
            b = int(rng.integers(cells_per_group)) + \
                group * cells_per_group
        else:
            b = int(rng.integers(total))
        if a == b:
            b = (b + 1) % total
        netlist.add_net(f"n{e}", [(a, 0.5, 0.5), (b, 0.5, 0.5)])
    return netlist.compile(region)


def main() -> None:
    cells_per_group = 40
    db = build_design(cells_per_group)
    left = FenceRegion("left", 2, 2, 20, 46,
                       cells=list(range(cells_per_group)))
    right = FenceRegion("right", 28, 2, 46, 46,
                        cells=list(range(cells_per_group, 2 * cells_per_group)))

    wirelength = WeightedAverageWirelength(db, gamma=2.0)
    density = MultiRegionDensity(db, [left, right], num_bins=16)
    lo, hi = fence_clamp_bounds(db, [left, right])

    pos = np.concatenate([db.cell_x, db.cell_y])
    pos = np.minimum(np.maximum(pos, lo), hi)
    pos += np.random.default_rng(0).normal(0, 0.05, pos.shape)
    p = Parameter(np.minimum(np.maximum(pos, lo), hi))

    density_weight = 0.0

    def closure():
        p.zero_grad()
        obj = wirelength(p) + density_weight * density(p)
        obj.backward()
        return obj

    # lambda init: balance gradient norms, then anneal like the placer
    p.zero_grad()
    wirelength(p).backward()
    wl_norm = np.abs(p.grad).sum()
    p.zero_grad()
    density(p).backward()
    density_weight = wl_norm / max(np.abs(p.grad).sum(), 1e-12)

    optimizer = NesterovLineSearch([p], lr=1.0)
    for iteration in range(150):
        optimizer.step(closure)
        optimizer.project(lambda a: np.minimum(np.maximum(a, lo), hi))
        density_weight *= 1.05
        wirelength.gamma = max(wirelength.gamma * 0.99, 0.3)

    n = db.num_cells
    x = p.data[:n]
    y = p.data[n:]
    in_left = (x[:cells_per_group] >= left.xl - 1e-6) & \
        (x[:cells_per_group] + db.cell_width[:cells_per_group] <= left.xh + 1e-6)
    in_right = (x[cells_per_group:] >= right.xl - 1e-6)
    print(f"HPWL            : {db.hpwl(x, y):,.0f}")
    print(f"left fence kept : {in_left.all()} "
          f"(x range {x[:cells_per_group].min():.1f}.."
          f"{x[:cells_per_group].max():.1f})")
    print(f"right fence kept: {in_right.all()} "
          f"(x range {x[cells_per_group:].min():.1f}.."
          f"{x[cells_per_group:].max():.1f})")
    from repro.geometry import BinGrid

    print(f"overflow        : "
          f"{density_overflow(db, BinGrid(db.region, 16, 16), x, y):.3f}")


if __name__ == "__main__":
    main()
