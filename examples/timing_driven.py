#!/usr/bin/env python
"""Timing-driven placement via net weighting (Section III-G).

Runs the classic loop the paper proposes as an extension: place, run
static timing analysis, weight critical nets up, re-place.  Reports the
critical-path delay trajectory and the HPWL the optimization trades for
it.

Run with::

    python examples/timing_driven.py
"""

from repro.benchgen import CircuitSpec, generate
from repro.core import PlacementParams
from repro.timing import StaticTimingAnalysis, timing_driven_place


def main() -> None:
    spec = CircuitSpec(name="timing", num_cells=600, utilization=0.6,
                       num_ios=24, seed=13)
    params = PlacementParams(max_global_iters=400, detailed_passes=1)

    db = generate(spec)
    result = timing_driven_place(db, params, rounds=3, max_weight=8.0)

    print(f"{'round':>6} | {'max arrival':>12} | {'WNS':>8} | {'TNS':>10}")
    for i, report in enumerate(result.reports):
        print(f"{i:>6} | {report.max_arrival:>12.2f} | "
              f"{report.wns:>8.2f} | {report.tns:>10.2f}")

    gain = 1.0 - result.max_arrival / result.initial_max_arrival
    print(f"\ncritical-path delay: {result.initial_max_arrival:.2f} -> "
          f"{result.max_arrival:.2f}  ({gain:.1%} faster)")
    print(f"final HPWL: {result.hpwl:,.0f} "
          "(wirelength is traded for timing)")

    final_report = StaticTimingAnalysis(db).run()
    path = final_report.critical_path
    print(f"critical path ({len(path)} cells): "
          + " -> ".join(db.cell_names[c] for c in path[:8])
          + (" ..." if len(path) > 8 else ""))


if __name__ == "__main__":
    main()
