#!/usr/bin/env python
"""ISPD2005-style flow: scaled adaptec1 vs the RePlAce-style baseline.

Reproduces one row of Table II interactively: places the adaptec1
analog with both engines, reports HPWL + per-stage runtime, and
round-trips the result through the Bookshelf format (the "IO" column).

Run with::

    python examples/ispd2005_flow.py [scale]

``scale`` is the cell-count reduction vs the real adaptec1 (default
400; 100 gives the DESIGN.md sizing, but runs longer).
"""

import sys
import tempfile
import time

from repro.baseline import ReplacePlacer
from repro.benchgen import load_design
from repro.bookshelf import read_bookshelf, write_bookshelf
from repro.core import DreamPlacer, PlacementParams


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    params = PlacementParams(dtype="float64")

    db = load_design("adaptec1", scale=scale)
    print(f"adaptec1 analog at 1/{scale}: {db}")

    print("\n-- DREAMPlace-style flow (random init, vectorized kernels)")
    dream = DreamPlacer(db, params).run()
    print(f"   HPWL {dream.hpwl_final:,.0f}  "
          f"GP {dream.times.global_place:.2f}s  "
          f"LG {dream.times.legalize:.2f}s  "
          f"DP {dream.times.detailed:.2f}s  legal={dream.legality.legal}")

    print("\n-- RePlAce-style baseline (B2B init, reference kernels)")
    db_base = load_design("adaptec1", scale=scale)
    base = ReplacePlacer(db_base, params, timing_mode="extrapolate").run()
    print(f"   HPWL {base.hpwl_final:,.0f}  "
          f"GP {base.gp_time:.2f}s "
          f"(IP {base.init_place_time:.2f}s + NL {base.nonlinear_time:.2f}s)  "
          f"LG {base.times.legalize:.2f}s")

    speedup = base.gp_time / dream.times.global_place
    quality = base.hpwl_final / dream.hpwl_final
    print(f"\n   GP speedup {speedup:.1f}x at HPWL ratio {quality:.4f} "
          "(paper: ~40x at 1.002)")

    print("\n-- Bookshelf round-trip (the IO column)")
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        aux = write_bookshelf(db, tmp)
        reloaded = read_bookshelf(aux)
        io_time = time.perf_counter() - start
    print(f"   wrote+read {aux.rsplit('/', 1)[-1]} in {io_time:.2f}s; "
          f"HPWL preserved: "
          f"{abs(reloaded.hpwl() - db.hpwl()) < 1e-6 * db.hpwl()}")


if __name__ == "__main__":
    main()
