#!/usr/bin/env python
"""Routability-driven placement (Section III-F, Table V's flow).

Places a DAC2012-style design twice: wirelength-driven only, and with
the router-in-the-loop cell-inflation flow, then compares routing
congestion (RC), scaled wirelength (sHPWL) and where the runtime goes.

Run with::

    python examples/routability_driven.py
"""

from repro.benchgen import load_design
from repro.core import DreamPlacer, PlacementParams
from repro.core.metrics import scaled_hpwl
from repro.route import GlobalRouter


def main() -> None:
    from repro.route.router import calibrate_capacity

    print("-- wirelength-driven placement (no inflation)")
    db = load_design("superblue2", scale=400)
    plain = DreamPlacer(
        db, PlacementParams(dtype="float32", detailed_passes=1),
    ).run()
    capacity = calibrate_capacity(db, num_tiles=24, num_layers=4)
    print(f"   calibrated tile capacity: {capacity:.1f} tracks/layer")
    route_cfg = dict(route_num_tiles=24, route_num_layers=4,
                     route_tile_capacity=capacity)
    router = GlobalRouter(db, num_tiles=24, num_layers=4,
                          tile_capacity=capacity)
    routed = router.route()
    plain_shpwl = scaled_hpwl(plain.hpwl_final, routed.rc)
    print(f"   HPWL {plain.hpwl_final:,.0f}  RC {routed.rc:.2f}  "
          f"sHPWL {plain_shpwl:,.0f}  overflow {routed.total_overflow:.0f}")

    print("\n-- routability-driven placement (cell inflation loop)")
    db2 = load_design("superblue2", scale=400)
    params = PlacementParams(dtype="float32", detailed_passes=1,
                             routability=True, **route_cfg)
    driven = DreamPlacer(db2, params).run()
    print(f"   HPWL {driven.hpwl_final:,.0f}  RC {driven.rc:.2f}  "
          f"sHPWL {driven.shpwl:,.0f}")
    print(f"   inflation rounds {driven.inflation_rounds}, "
          f"router calls {driven.router_calls}")
    print(f"   runtime: NL {driven.times.global_place:.2f}s, "
          f"GR {driven.times.global_route:.2f}s, "
          f"LG {driven.times.legalize:.2f}s, "
          f"DP {driven.times.detailed:.2f}s")

    gr_share = driven.times.global_route / (
        driven.times.global_place + driven.times.global_route
    )
    print(f"\n   RC: {routed.rc:.2f} -> {driven.rc:.2f}; "
          f"GR share of GP {gr_share:.0%} "
          "(paper: router dominates at ~70%)")


if __name__ == "__main__":
    main()
