"""Ablations of the design choices DESIGN.md calls out.

Not a paper table, but each row checks one claim made in the text:

- Section III: random-center initialization matches bound-to-bound
  quality ("<0.04% difference") at a fraction of the runtime (B2B is
  21.1% of RePlAce's GP in Fig. 3).
- ePlace filler cells: without them, low-utilization designs
  under-spread and quality degrades.
- Section III-C: the TCAD mu tweak stabilizes convergence (quality no
  worse than the plain eq. 18 schedule).
- Section II-C: gamma annealing (overflow-driven) vs a fixed gamma.
"""

import pytest

from _support import get_design, once, print_header, print_row, record
from repro.baseline import bound2bound_place
from repro.core import GlobalPlacer, PlacementParams
from repro.lg import legalize

_DESIGN = "adaptec1"


def _quality(db, params, init=None) -> tuple[float, float]:
    """(legalized HPWL, GP seconds) for one configuration."""
    placer = GlobalPlacer(db, params)
    if init is not None:
        placer.set_positions(*init)
    result = placer.place()
    placer.write_back()
    x, y = legalize(db, result.x, result.y)
    return db.hpwl(x, y), result.runtime


def test_ablation_initialization(benchmark):
    """Random-center init vs bound-to-bound init (same solver after)."""
    import time

    params = PlacementParams(dtype="float64")
    db_rand = get_design(_DESIGN)
    hpwl_rand, gp_rand = once(
        benchmark, lambda: _quality(db_rand, params)
    )

    db_b2b = get_design(_DESIGN)
    start = time.perf_counter()
    init = bound2bound_place(db_b2b)
    b2b_time = time.perf_counter() - start
    hpwl_b2b, gp_b2b = _quality(db_b2b, params, init=init)

    ratio = hpwl_rand / hpwl_b2b
    print_header("Ablation: initial placement", ["init", "HPWL", "GP(s)"])
    print_row(["random-center", hpwl_rand, gp_rand])
    print_row(["bound-to-bound", hpwl_b2b, gp_b2b + b2b_time])
    print(f"-- quality ratio random/B2B = {ratio:.4f} "
          "(paper: < 1.0004); B2B adds "
          f"{b2b_time:.2f}s before GP even starts")
    record("ablations", {"ablation": "init", "hpwl_random": hpwl_rand,
                         "hpwl_b2b": hpwl_b2b, "b2b_seconds": b2b_time})
    assert ratio < 1.05


def test_ablation_fillers(benchmark):
    """Filler cells on a low-utilization design."""
    params_on = PlacementParams(use_fillers=True)
    params_off = PlacementParams(use_fillers=False)
    db_on = get_design(_DESIGN)
    hpwl_on, _ = once(benchmark, lambda: _quality(db_on, params_on))
    db_off = get_design(_DESIGN)
    hpwl_off, _ = _quality(db_off, params_off)
    print_header("Ablation: filler cells", ["fillers", "HPWL"])
    print_row(["on", hpwl_on])
    print_row(["off", hpwl_off])
    print(f"-- off/on HPWL ratio {hpwl_off / hpwl_on:.3f}")
    record("ablations", {"ablation": "fillers", "hpwl_on": hpwl_on,
                         "hpwl_off": hpwl_off})
    # fillers should not hurt; typically they help on sparse designs
    assert hpwl_on < hpwl_off * 1.10


def test_ablation_mu_tweak(benchmark):
    """The TCAD mu_max * max(0.9999^k, 0.98) modification."""
    db_tweak = get_design(_DESIGN)
    hpwl_tweak, _ = once(benchmark, lambda: _quality(
        db_tweak, PlacementParams(tcad_mu_tweak=True)
    ))
    db_plain = get_design(_DESIGN)
    hpwl_plain, _ = _quality(db_plain, PlacementParams(tcad_mu_tweak=False))
    print_header("Ablation: density-weight mu tweak", ["variant", "HPWL"])
    print_row(["tcad tweak", hpwl_tweak])
    print_row(["plain eq.18", hpwl_plain])
    record("ablations", {"ablation": "mu_tweak", "hpwl_tweak": hpwl_tweak,
                         "hpwl_plain": hpwl_plain})
    assert hpwl_tweak < hpwl_plain * 1.05


def test_ablation_gamma_annealing(benchmark):
    """Overflow-driven gamma vs freezing gamma at its initial value."""
    db_anneal = get_design(_DESIGN)
    hpwl_anneal, _ = once(benchmark, lambda: _quality(
        db_anneal, PlacementParams()
    ))

    db_fixed = get_design(_DESIGN)
    placer = GlobalPlacer(db_fixed, PlacementParams())
    placer.gamma_schedule = lambda overflow: \
        placer.objective.wirelength.gamma  # freeze
    result = placer.place()
    x, y = legalize(db_fixed, result.x, result.y)
    hpwl_fixed = db_fixed.hpwl(x, y)

    print_header("Ablation: gamma annealing", ["variant", "HPWL"])
    print_row(["annealed", hpwl_anneal])
    print_row(["frozen", hpwl_fixed])
    print(f"-- frozen/annealed {hpwl_fixed / hpwl_anneal:.3f} "
          "(annealing sharpens the WA model as cells spread)")
    record("ablations", {"ablation": "gamma", "hpwl_annealed": hpwl_anneal,
                         "hpwl_frozen": hpwl_fixed})
    assert hpwl_anneal < hpwl_fixed * 1.02
