"""Worker-pool benchmark: sweep wall clock vs worker count.

Runs the same parameter sweep (seed fan x density grid) through the
Scheduler serially and under multi-process pools of increasing size,
each into a fresh run store, and reports the wall clock, speedup over
serial and per-job average.  Every configuration must complete every
job and produce the same set of job hashes — the pool changes *when*
jobs run, never *what* they compute.

Speedup is host-dependent (spawn startup dominates for tiny designs),
so the assertions check correctness and completion, not a ratio.
"""

import os
import shutil
import tempfile
import time

from _support import get_design, once, print_header, print_row, record
from repro.bookshelf import write_bookshelf
from repro.core import PlacementParams
from repro.runner import DesignRef, JobSpec, ResultCache, RunStore, Scheduler

DESIGN = "adaptec1"
WORKER_COUNTS = [1, 2, 4]
GRID = {"seed": [1, 2], "target_density": [0.85, 1.0]}
MAX_ITERS = 60


def _base_spec(aux: str) -> JobSpec:
    return JobSpec(
        design=DesignRef.parse(aux),
        params=PlacementParams(max_global_iters=MAX_ITERS,
                               min_global_iters=5),
        stages=("gp",),
    )


def _run_sweep(aux: str, root: str, workers: int):
    store = RunStore(os.path.join(root, f"store-w{workers}"))
    scheduler = Scheduler(store, cache=ResultCache(store), workers=workers)
    jobs = scheduler.submit_sweep(_base_spec(aux), GRID)
    start = time.perf_counter()
    outcomes = scheduler.run()
    runtime = time.perf_counter() - start
    return jobs, outcomes, runtime


def test_workers(benchmark):
    print_header(
        "Sweep wall clock vs worker count",
        ["workers", "jobs", "ok", "wall s", "speedup", "s/job"],
    )
    scratch = tempfile.mkdtemp(prefix="bench-workers-")
    try:
        # spawn children load the design from disk, so materialize the
        # cached synthetic design as a Bookshelf directory first
        aux = str(write_bookshelf(get_design(DESIGN),
                                  os.path.join(scratch, "design")))
        rows = []
        for workers in WORKER_COUNTS:
            jobs, outcomes, runtime = _run_sweep(aux, scratch, workers)
            rows.append((workers, jobs, outcomes, runtime))
            serial_wall = rows[0][3]
            print_row([
                workers, jobs, sum(o.ok for o in outcomes),
                f"{runtime:.2f}", f"{serial_wall / runtime:.2f}x",
                f"{runtime / jobs:.2f}",
            ])
            record("workers", {
                "design": DESIGN,
                "workers": workers,
                "jobs": jobs,
                "completed": sum(o.ok for o in outcomes),
                "wall_s": runtime,
                "speedup_vs_serial": serial_wall / runtime,
            })

        # timing row for pytest-benchmark: the widest pool
        once(benchmark,
             lambda: _run_sweep(aux, os.path.join(scratch, "timed"),
                                WORKER_COUNTS[-1]))

        serial_hashes = [o.job_hash for o in rows[0][2]]
        for workers, jobs, outcomes, _ in rows:
            assert len(outcomes) == jobs, (workers, outcomes)
            assert all(o.ok for o in outcomes), (workers, outcomes)
            # identical job identities, merged in submission order
            assert [o.job_hash for o in outcomes] == serial_hashes, workers
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
