"""Multilevel cascade benchmark: flat vs coarse-to-fine GP wall-clock.

Runs global placement on a 50k-cell synthetic design four ways — the
{eager, captured-replay} x {flat, multilevel cascade} grid — and
reports wall-clock, total/per-level iteration counts and final HPWL.
The cascade must beat flat GP wall-clock at a small HPWL premium (the
coarse level trades cluster-granularity wirelength fidelity for nearly
free spreading iterations), and graph capture must compose with the
cascade (each level records its own tape once and replays it).

Heavier than the default benchmark operating point, so the cell count
is scaled by ``REPRO_ML_CELLS`` (default 50000).  Besides the usual
``benchmarks/results`` row, writes a summary to
``BENCH_multilevel.json`` at the repo root.
"""

import json
import os
import time

import numpy as np

from _support import print_header, print_row, record
from repro.benchgen import CircuitSpec, generate
from repro.core import GlobalPlacer, PlacementParams
from repro.core.multilevel import multilevel_place

NUM_CELLS = int(os.environ.get("REPRO_ML_CELLS", "50000"))
SEED = 1
ROOT_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_multilevel.json",
)


def _design():
    return generate(CircuitSpec(name=f"ml{NUM_CELLS}",
                                num_cells=NUM_CELLS,
                                num_ios=256, seed=SEED))


def _params(capture: bool) -> PlacementParams:
    return PlacementParams(seed=SEED, max_global_iters=1500,
                           graph_capture=capture)


def _run(db, capture: bool, multilevel: bool):
    params = _params(capture)
    t0 = time.perf_counter()
    if multilevel:
        result = multilevel_place(
            db, params.with_overrides(multilevel_levels=3))
    else:
        result = GlobalPlacer(db, params).place()
    wall = time.perf_counter() - t0
    return {
        "mode": "replay" if capture else "eager",
        "gp": "cascade" if multilevel else "flat",
        "wall_s": wall,
        "iterations": int(result.iterations),
        "hpwl": float(result.hpwl),
        "overflow": float(result.overflow),
        "converged": bool(result.converged),
        "levels": result.levels if multilevel else None,
    }


def run(benchmark=None):
    print_header(
        f"Multilevel cascade vs flat GP ({NUM_CELLS} cells)",
        ["mode", "gp", "wall s", "iters", "hpwl", "vs flat", "speedup"],
    )
    rows = []
    flat_by_mode = {}
    for capture in (False, True):
        for multilevel in (False, True):
            row = _run(_design(), capture, multilevel)
            if not multilevel:
                flat_by_mode[row["mode"]] = row
            flat = flat_by_mode[row["mode"]]
            row["hpwl_delta_pct"] = (row["hpwl"] / flat["hpwl"] - 1) * 100
            row["speedup_vs_flat"] = flat["wall_s"] / row["wall_s"]
            iters = str(row["iterations"])
            if row["levels"]:
                iters += " (" + "+".join(
                    str(info["iterations"]) for info in row["levels"]) + ")"
            print_row([
                row["mode"], row["gp"], f"{row['wall_s']:.1f}", iters,
                f"{row['hpwl']:.4e}", f"{row['hpwl_delta_pct']:+.2f}%",
                f"{row['speedup_vs_flat']:.2f}x",
            ])
            record("multilevel", row)
            rows.append(row)

    cascade = [r for r in rows if r["gp"] == "cascade"]
    summary = {
        "num_cells": NUM_CELLS,
        "speedup_eager": next(r["speedup_vs_flat"] for r in cascade
                              if r["mode"] == "eager"),
        "speedup_replay": next(r["speedup_vs_flat"] for r in cascade
                               if r["mode"] == "replay"),
        "hpwl_delta_pct_replay": next(r["hpwl_delta_pct"] for r in cascade
                                      if r["mode"] == "replay"),
        "runs": rows,
    }
    with open(ROOT_JSON, "w") as handle:
        json.dump(summary, handle, indent=1)
    print(f"-- cascade speedup: eager {summary['speedup_eager']:.2f}x, "
          f"replay {summary['speedup_replay']:.2f}x at "
          f"{summary['hpwl_delta_pct_replay']:+.2f}% HPWL")

    assert all(r["converged"] for r in rows), rows
    # the cascade must actually pay for itself, in both engines
    assert summary["speedup_eager"] > 1.0, summary
    assert summary["speedup_replay"] > 1.0, summary
    # cascade positions stay bit-deterministic across engines: capture
    # never changes semantics, multilevel or not
    hp = {r["mode"]: r["hpwl"] for r in cascade}
    assert np.isclose(hp["eager"], hp["replay"], rtol=0, atol=0), hp
    return summary


def test_multilevel_cascade(benchmark):
    run(benchmark)


if __name__ == "__main__":
    run()
