"""Tracing overhead micro-benchmark: disabled tracing must be free.

``trace_span`` guards the hot GP loop (every iteration and every
profiled kernel op), so its disabled path has to be a single global
read plus an early return.  This bench measures per-iteration GP time
three ways — no tracer installed, a tracer collecting spans, and the
raw ``trace_span`` call in isolation — and asserts the acceptance
criterion: with tracing *disabled*, the instrumented loop adds no
measurable per-iteration overhead versus the enabled run's span cost.
"""

import time

from _support import get_design, once, print_header, print_row, record
from repro.core import GlobalPlacer, PlacementParams
from repro.obs import Tracer, trace_span

DESIGN = "adaptec1"
WARMUP = 5
ITERS = 40
CALL_REPS = 200_000


def _gp_iteration(db):
    """One primed GP-loop iteration (the instrumented hot path)."""
    placer = GlobalPlacer(db, PlacementParams())
    overflow = placer.overflow()
    placer.objective.gamma = placer.gamma_schedule(overflow)
    weight = placer._init_density_weight()
    placer.objective.density_weight = weight.value
    optimizer, _ = placer._build_optimizer()

    def closure():
        placer.pos.zero_grad()
        obj = placer.objective(placer.pos)
        obj.backward()
        return obj

    def iteration():
        with trace_span("gp.iteration"):
            optimizer.step(closure)
            optimizer.project(placer._clamp)
            placer.hpwl()
            placer.overflow()

    return iteration


def _time_loop(iteration) -> float:
    for _ in range(WARMUP):
        iteration()
    start = time.perf_counter()
    for _ in range(ITERS):
        iteration()
    return (time.perf_counter() - start) / ITERS


def _time_bare_span() -> float:
    """Seconds per disabled trace_span call, measured in isolation."""
    start = time.perf_counter()
    for _ in range(CALL_REPS):
        with trace_span("noop"):
            pass
    return (time.perf_counter() - start) / CALL_REPS


def test_disabled_tracing_adds_no_overhead(benchmark):
    db = get_design(DESIGN)
    iteration = _gp_iteration(db)

    t_disabled = _time_loop(iteration)
    with Tracer() as tracer:
        t_enabled = _time_loop(iteration)
    per_span = _time_bare_span()

    print_header("observability overhead",
                 ["mode", "ms/iter", "ratio"])
    print_row(["disabled", f"{t_disabled * 1e3:.3f}", "1.00x"])
    print_row(["enabled", f"{t_enabled * 1e3:.3f}",
               f"{t_enabled / t_disabled:.2f}x"])
    print(f"-- disabled trace_span: {per_span * 1e9:.0f} ns/call, "
          f"{len(tracer.trace)} spans collected while enabled")
    record("obs_overhead", {
        "design": DESIGN,
        "ms_per_iter_disabled": t_disabled * 1e3,
        "ms_per_iter_enabled": t_enabled * 1e3,
        "ns_per_disabled_span": per_span * 1e9,
    })

    once(benchmark, iteration)

    assert len(tracer.trace) >= ITERS + WARMUP
    # the acceptance criterion: the disabled guard costs sub-µs against
    # millisecond iterations — under 0.5% of an iteration, i.e. no
    # measurable per-iteration overhead
    assert per_span < 0.005 * t_disabled, (
        f"disabled trace_span costs {per_span * 1e9:.0f} ns against "
        f"{t_disabled * 1e3:.3f} ms iterations"
    )
