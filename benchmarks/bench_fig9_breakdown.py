"""Fig. 9 — DREAMPlace runtime breakdown.

(a) whole-flow shares on bigblue4: GP + LG are small next to DP (which
the paper delegates to an external CPU tool) and file IO.
(b) one GP forward+backward pass: density-related computation dominates
wirelength (paper: 73.4% vs 26.5%).
"""

import tempfile
import time

import pytest

from _support import get_design, once, print_header, print_row, record
from repro.bookshelf import read_bookshelf, write_bookshelf
from repro.core import DreamPlacer, GlobalPlacer, PlacementParams
from repro.nn import Parameter


def test_fig9a_flow_breakdown(benchmark):
    db = get_design("bigblue4")
    params = PlacementParams(dtype="float32", detailed_passes=1)
    result = once(benchmark, lambda: DreamPlacer(db, params).run())

    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        aux = write_bookshelf(db, tmp)
        read_bookshelf(aux)
        io_time = time.perf_counter() - start

    total = result.times.total + io_time
    shares = {
        "GP": result.times.global_place / total,
        "LG": result.times.legalize / total,
        "DP": result.times.detailed / total,
        "IO": io_time / total,
    }
    print_header("Fig. 9(a) analog: DREAMPlace flow breakdown (bigblue4)",
                 ["stage", "share"])
    for stage, share in shares.items():
        print_row([stage, f"{share:.1%}"])
    print(f"-- GP+LG = {shares['GP'] + shares['LG']:.0%} "
          "(paper: 6.2%; DP dominates)")
    record("fig9_breakdown", {"part": "flow", **shares})
    # shape: DP is the dominant stage once GP is accelerated
    assert shares["DP"] > shares["GP"]


def test_fig9b_forward_backward_split(benchmark):
    db = get_design("bigblue4")
    params = PlacementParams(dtype="float32")
    placer = GlobalPlacer(db, params)
    objective = placer.objective
    pos = placer.pos

    def run_op(op):
        pos.zero_grad()
        op(pos).backward()

    # warm up, then measure via the op-level profiler (the same hooks
    # `repro place --profile` reports)
    run_op(objective.wirelength)
    run_op(objective.density)
    from repro.perf import Profiler

    with Profiler() as prof:
        for _ in range(5):
            run_op(objective.wirelength)
            run_op(objective.density)
    once(benchmark, lambda: run_op(objective.density))

    stats = prof.as_dict()
    wl = sum(s["self_seconds"] for name, s in stats.items()
             if name.startswith("wl."))
    density = sum(s["self_seconds"] for name, s in stats.items()
                  if name.startswith("density."))
    total = wl + density
    print_header(
        "Fig. 9(b) analog: one GP forward+backward pass (bigblue4)",
        ["op", "share"],
    )
    for name, s in sorted(stats.items(), key=lambda kv: -kv[1]["self_seconds"]):
        print_row([name, f"{s['self_seconds'] / total:.1%}"])
    print_row(["wirelength (all)", f"{wl / total:.1%}"])
    print_row(["density (all)", f"{density / total:.1%}"])
    print("-- paper: density 73.4%, wirelength 26.5%")
    record("fig9_breakdown", {
        "part": "fwd_bwd", "wirelength_share": wl / total,
        "density_share": density / total,
        "ops": {name: s["self_seconds"] for name, s in stats.items()},
    })
    assert density > wl
