"""Fig. 3 — runtime breakdown of the RePlAce-style baseline.

The paper shows GP (initial placement + nonlinear optimization) taking
~90% of RePlAce's runtime on bigblue4, with initial placement alone at
25-30% of GP — motivating both the GP acceleration and the random-init
replacement for bound-to-bound.
"""

import pytest

from _support import get_design, once, print_header, print_row, record
from repro.baseline import ReplacePlacer
from repro.core import PlacementParams


def test_fig3_breakdown(benchmark):
    db = get_design("bigblue4")
    params = PlacementParams(dtype="float64", detailed_passes=1)
    placer = ReplacePlacer(db, params, timing_mode="extrapolate")
    result = once(benchmark, placer.run)

    total = result.gp_time + result.times.legalize + result.times.detailed
    shares = {
        "GP-IP": result.init_place_time / total,
        "GP-Nonlinear": result.nonlinear_time / total,
        "LG": result.times.legalize / total,
        "DP": result.times.detailed / total,
    }
    print_header("Fig. 3 analog: baseline runtime breakdown (bigblue4)",
                 ["stage", "share"])
    for stage, share in shares.items():
        print_row([stage, f"{share:.1%}"])
    gp_share = shares["GP-IP"] + shares["GP-Nonlinear"]
    print(f"-- GP total {gp_share:.0%} (paper: ~90%); "
          f"GP-IP within GP "
          f"{result.init_place_time / result.gp_time:.0%} "
          "(paper: 25-30%)")
    record("fig3_baseline_breakdown", {
        "design": "bigblue4", **{k: v for k, v in shares.items()},
        "gp_share": gp_share,
    })
    # shape: GP dominates the baseline flow
    assert gp_share > 0.5
