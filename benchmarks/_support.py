"""Shared helpers for the benchmark harness.

Every bench prints the same rows/series the corresponding paper table or
figure reports, and appends machine-readable results to
``benchmarks/results/<bench>.json``.

Environment knobs:

- ``REPRO_SCALE``: cell-count reduction factor vs the paper's designs
  (default 400; 100 reproduces the DESIGN.md sizing, but takes longer).
- ``REPRO_DESIGN_LIMIT``: cap on designs per table (default: all).
"""

from __future__ import annotations

import functools
import json
import os
import time

DEFAULT_SCALE = int(os.environ.get("REPRO_SCALE", "400"))
DESIGN_LIMIT = int(os.environ.get("REPRO_DESIGN_LIMIT", "0")) or None

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@functools.lru_cache(maxsize=None)
def _design_cache(name: str, scale: int):
    from repro.benchgen import load_design

    return load_design(name, scale=scale)


def get_design(name: str, scale: int = DEFAULT_SCALE):
    """A fresh copy of a cached generated design."""
    return _design_cache(name, scale).clone()


def suite_names(table: str) -> list[str]:
    from repro.benchgen import dac2012_suite, industrial_suite, ispd2005_suite

    suites = {
        "ispd2005": ispd2005_suite(),
        "industrial": industrial_suite(),
        "dac2012": dac2012_suite(),
    }
    names = [spec.name for spec in suites[table]]
    return names[:DESIGN_LIMIT] if DESIGN_LIMIT else names


def record(bench: str, payload: dict) -> None:
    """Append one result row to benchmarks/results/<bench>.json."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{bench}.json")
    rows = []
    if os.path.exists(path):
        with open(path) as handle:
            rows = json.load(handle)
    payload = dict(payload)
    payload["timestamp"] = time.time()
    payload["scale"] = DEFAULT_SCALE
    rows.append(payload)
    with open(path, "w") as handle:
        json.dump(rows, handle, indent=1)


def print_header(title: str, columns: list[str]) -> None:
    print()
    print(f"== {title} (1/{DEFAULT_SCALE} of paper sizes) ==")
    print(" | ".join(f"{c:>12}" for c in columns))


def print_row(values: list) -> None:
    cells = []
    for v in values:
        if isinstance(v, float):
            cells.append(f"{v:>12.3f}")
        else:
            cells.append(f"{str(v):>12}")
    print(" | ".join(cells))


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
