"""Legality-engine micro-benchmark: vectorized sweep vs Python sweep.

Builds a ~50k-cell legal placement (row-major packing on the site
grid, no GP/LG needed) and times ``check_legal`` against
``check_legal_reference`` on it, plus a lightly jittered variant that
exercises the dirty-band fallback.  The vectorized checker must be at
least 10x faster on the legal placement.  A second section times the
cached ``IncrementalHpwl`` delta/apply path against the per-pin
reference loops.
"""

import time

import numpy as np

from _support import print_header, print_row, record
from repro.benchgen import CircuitSpec, generate
from repro.dp import IncrementalHpwl, ReferenceIncrementalHpwl
from repro.lg import check_legal, check_legal_reference

NUM_CELLS = 50_000
CHECK_REPS = 5
DELTA_REPS = 2_000


def _packed_design(num_cells: int):
    """A generated netlist with a synthesized legal placement."""
    db = generate(CircuitSpec(name="legality", num_cells=num_cells,
                              seed=9, num_ios=0))
    region = db.region
    x = db.cell_x.copy()
    y = db.cell_y.copy()
    cursor = region.xl
    row = 0
    for cell in db.movable_index:
        w = db.cell_width[cell]
        if cursor + w > region.xh + 1e-9:
            cursor = region.xl
            row += 1
        x[cell] = cursor
        y[cell] = region.yl + row * region.row_height
        cursor += w
    if region.yl + row * region.row_height >= region.yh:
        raise RuntimeError("packing overflowed the region")
    return db, x, y


def _time(fn, reps):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_checker():
    db, x, y = _packed_design(NUM_CELLS)
    print_header("legality checker: vectorized vs reference",
                 ["case", "reference_s", "vectorized_s", "speedup"])
    rows = []
    rng = np.random.default_rng(0)
    cases = [
        ("legal", x, y),
        ("jittered", x + rng.normal(0, 0.05, x.size), y),
    ]
    for case, cx, cy in cases:
        ref_s, ref = _time(lambda: check_legal_reference(db, cx, cy), 1)
        vec_s, vec = _time(lambda: check_legal(db, cx, cy), CHECK_REPS)
        assert vec.as_dict() == ref.as_dict(), case
        speedup = ref_s / vec_s
        print_row([case, ref_s, vec_s, speedup])
        rows.append({"case": case, "reference_s": ref_s,
                     "vectorized_s": vec_s, "speedup": speedup})
    record("bench_legality", {"section": "checker",
                              "num_cells": NUM_CELLS, "rows": rows})
    legal_speedup = rows[0]["speedup"]
    if legal_speedup < 10.0:
        raise SystemExit(
            f"vectorized checker only {legal_speedup:.1f}x faster "
            f"(need >= 10x)")


def bench_incremental():
    db, x, y = _packed_design(NUM_CELLS // 5)
    rng = np.random.default_rng(1)
    mv = db.movable_index
    moves = [(rng.choice(mv, size=2, replace=False),
              rng.uniform(db.region.xl, db.region.xh - 4, 2),
              rng.uniform(db.region.yl, db.region.yh - 1, 2))
             for _ in range(DELTA_REPS)]

    def run(engine):
        state = engine(db, x, y)
        start = time.perf_counter()
        for cells, nx, ny in moves:
            state.delta(cells, nx, ny)
        return time.perf_counter() - start

    ref_s = run(ReferenceIncrementalHpwl)
    vec_s = run(IncrementalHpwl)
    print_header("incremental HPWL: cached bboxes vs per-pin loops",
                 ["deltas", "reference_s", "cached_s", "speedup"])
    print_row([DELTA_REPS, ref_s, vec_s, ref_s / vec_s])
    record("bench_legality", {"section": "incremental",
                              "num_cells": NUM_CELLS // 5,
                              "deltas": DELTA_REPS,
                              "reference_s": ref_s, "cached_s": vec_s,
                              "speedup": ref_s / vec_s})


if __name__ == "__main__":
    bench_checker()
    bench_incremental()
