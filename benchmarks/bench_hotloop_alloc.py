"""Hot-loop pooling micro-benchmark: per-iteration time and allocations.

Runs the merged-strategy GP step (Nesterov step + projection + HPWL +
overflow, exactly the loop body of ``GlobalPlacer.place``) with
``workspace_pooling`` off and on, and reports per-iteration wall time
plus tracemalloc allocation counts.  The pooled configuration must be
at least ~1.3x faster per iteration and allocation-free in steady state
(small bookkeeping aside).
"""

import time
import tracemalloc

from _support import get_design, once, print_header, print_row, record
from repro.core import GlobalPlacer, PlacementParams

DESIGNS = ["adaptec1", "bigblue1"]
WARMUP = 5
ITERS = 40
ALLOC_ITERS = 3


def _gp_loop(db, pooling: bool):
    """A primed GP loop: returns one-iteration callable matching place()."""
    params = PlacementParams(workspace_pooling=pooling,
                             wirelength_strategy="merged")
    placer = GlobalPlacer(db, params)
    overflow = placer.overflow()
    placer.objective.gamma = placer.gamma_schedule(overflow)
    weight = placer._init_density_weight()
    placer.objective.density_weight = weight.value
    optimizer, _ = placer._build_optimizer()

    def closure():
        placer.pos.zero_grad()
        obj = placer.objective(placer.pos)
        obj.backward()
        return obj

    def iteration():
        optimizer.step(closure)
        optimizer.project(placer._clamp)
        placer.hpwl()
        placer.overflow()

    return iteration


def _measure(db, pooling: bool):
    iteration = _gp_loop(db, pooling)
    for _ in range(WARMUP):
        iteration()
    start = time.perf_counter()
    for _ in range(ITERS):
        iteration()
    per_iter = (time.perf_counter() - start) / ITERS
    # allocation counters over a few steady-state iterations
    tracemalloc.start()
    iteration()  # settle tracemalloc's own bookkeeping
    base = tracemalloc.get_traced_memory()[0]
    tracemalloc.reset_peak()
    for _ in range(ALLOC_ITERS):
        iteration()
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    alloc_peak = max(peak - base, 0) / ALLOC_ITERS
    return per_iter, alloc_peak


def test_hotloop_alloc(benchmark):
    print_header(
        "Hot-loop pooling: merged-strategy GP step, before/after",
        ["design", "off ms/it", "on ms/it", "speedup",
         "off peak KB/it", "on peak KB/it"],
    )
    speedups = []
    rows = []
    for name in DESIGNS:
        db = get_design(name)
        t_off, a_off = _measure(db, pooling=False)
        t_on, a_on = _measure(db, pooling=True)
        speedups.append(t_off / t_on)
        rows.append((name, t_off, t_on, a_off, a_on))
        print_row([
            name, f"{t_off * 1e3:.2f}", f"{t_on * 1e3:.2f}",
            f"{t_off / t_on:.2f}x",
            f"{a_off / 1024:.0f}", f"{a_on / 1024:.0f}",
        ])
        record("hotloop_alloc", {
            "design": name,
            "ms_per_iter_unpooled": t_off * 1e3,
            "ms_per_iter_pooled": t_on * 1e3,
            "speedup": t_off / t_on,
            "peak_alloc_unpooled": a_off,
            "peak_alloc_pooled": a_on,
        })
    mean_speedup = sum(speedups) / len(speedups)
    print(f"-- mean speedup {mean_speedup:.2f}x (target >= 1.3x)")
    db = get_design(DESIGNS[0])
    iteration = _gp_loop(db, pooling=True)
    once(benchmark, iteration)
    assert mean_speedup >= 1.3
    # pooled steady state allocates far less than the unpooled baseline
    for name, _, _, a_off, a_on in rows:
        assert a_on < 0.5 * a_off, (name, a_on, a_off)
