"""Table IV — Nesterov vs native deep-learning solvers (Adam, SGD).

The paper swaps the ePlace Nesterov solver for stock PyTorch optimizers
with per-design exponential LR decay and reports final HPWL (after DP)
and GP runtime.  Expected shape: Adam reaches slightly better or equal
HPWL but needs ~1.8x the GP time; SGD with momentum is ~1.2% worse and
~1.7x slower.
"""

import pytest

from _support import get_design, once, print_header, print_row, record, suite_names
from repro.core import DreamPlacer, PlacementParams

# per-design LR decay, mirroring the "LR Decay" columns of Table IV
_DECAY = {
    "adaptec1": (0.995, 0.993),
    "adaptec2": (0.995, 0.993),
    "adaptec3": (0.995, 0.993),
    "adaptec4": (0.995, 0.993),
    "bigblue1": (0.995, 0.993),
    "bigblue2": (0.995, 0.993),
    "bigblue3": (0.997, 0.995),
    "bigblue4": (0.997, 0.995),
}

_RESULTS: dict[str, dict] = {}


def _solver_params(design: str, solver: str) -> PlacementParams:
    adam_decay, sgd_decay = _DECAY[design]
    base = PlacementParams(dtype="float64", detailed_passes=1,
                           max_global_iters=1500)
    if solver == "nesterov":
        return base
    if solver == "adam":
        return base.with_overrides(optimizer="adam", learning_rate=0.01,
                                   lr_decay=adam_decay)
    return base.with_overrides(optimizer="sgd", learning_rate=0.002,
                               momentum=0.9, lr_decay=sgd_decay)


@pytest.mark.parametrize("design", suite_names("ispd2005"))
@pytest.mark.parametrize("solver", ["nesterov", "adam", "sgd"])
def test_table4_cell(benchmark, design, solver):
    db = get_design(design)
    params = _solver_params(design, solver)
    result = once(benchmark, lambda: DreamPlacer(db, params).run())
    _RESULTS.setdefault(design, {})[solver] = {
        "hpwl": result.hpwl_final,
        "gp": result.times.global_place,
        "iterations": result.iterations,
        "overflow": result.overflow,
    }
    record("table4_solvers", {
        "design": design, "solver": solver,
        "hpwl": result.hpwl_final, "gp": result.times.global_place,
        "iterations": result.iterations, "overflow": result.overflow,
    })


def test_table4_summary(benchmark):
    complete = {d: r for d, r in _RESULTS.items() if len(r) == 3}
    if not complete:
        pytest.skip("per-design cells did not run")
    once(benchmark, lambda: None)
    print_header(
        "Table IV analog: solver comparison, float64",
        ["design", "nest HPWL", "nest GP", "adam HPWL", "adam GP",
         "sgd HPWL", "sgd GP"],
    )
    ratios = {"adam": {"hpwl": [], "gp": []}, "sgd": {"hpwl": [], "gp": []}}
    for design, row in complete.items():
        print_row([
            design,
            row["nesterov"]["hpwl"], row["nesterov"]["gp"],
            row["adam"]["hpwl"], row["adam"]["gp"],
            row["sgd"]["hpwl"], row["sgd"]["gp"],
        ])
        for solver in ("adam", "sgd"):
            ratios[solver]["hpwl"].append(
                row[solver]["hpwl"] / row["nesterov"]["hpwl"]
            )
            ratios[solver]["gp"].append(
                row[solver]["gp"] / max(row["nesterov"]["gp"], 1e-9)
            )

    summary = {}
    for solver in ("adam", "sgd"):
        hpwl = sum(ratios[solver]["hpwl"]) / len(ratios[solver]["hpwl"])
        gp = sum(ratios[solver]["gp"]) / len(ratios[solver]["gp"])
        summary[solver] = (hpwl, gp)
        print(f"-- {solver}: HPWL ratio {hpwl:.3f}, GP ratio {gp:.2f}x "
              f"(paper: {'0.997 / 1.78x' if solver == 'adam' else '1.012 / 1.69x'})")
    record("table4_solvers", {
        "design": "__summary__",
        "adam_hpwl_ratio": summary["adam"][0],
        "adam_gp_ratio": summary["adam"][1],
        "sgd_hpwl_ratio": summary["sgd"][0],
        "sgd_gp_ratio": summary["sgd"][1],
    })
    # shape: stock solvers are competitive on quality (the paper's
    # runtime gap needs designs large enough that line search pays off;
    # the measured ratios are recorded for EXPERIMENTS.md either way)
    assert summary["adam"][0] < 1.10
    assert summary["sgd"][0] < 1.15
