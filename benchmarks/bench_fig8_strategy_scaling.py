"""Fig. 8 — average GP runtime ratios across implementations.

The paper normalizes every configuration (RePlAce 1..40 threads,
DREAMPlace CPU 1..40 threads, DAC/TCAD GPU versions, float32/64) to the
TCAD DREAMPlace on V100.  The single-core analogs are kernel-strategy
configurations, normalized to the best one (merged + stamp + 2-D DCT,
float64); the sweep exposes the same saturation shape: each step of
kernel fusion/vectorization buys a diminishing factor.
"""

import pytest

from _support import get_design, once, print_header, print_row, record
from repro.core import GlobalPlacer, PlacementParams

# from slowest to fastest, the "thread count / version" axis analog
_CONFIGS = {
    "ref-all-naive": dict(wirelength_strategy="net_by_net",
                          density_strategy="naive", dct_impl="2n"),
    "atomic-sorted-n": dict(wirelength_strategy="atomic",
                            density_strategy="sorted", dct_impl="n"),
    "merged-sorted-n": dict(wirelength_strategy="merged",
                            density_strategy="sorted", dct_impl="n"),
    "merged-stamp-2d": dict(wirelength_strategy="merged",
                            density_strategy="stamp", dct_impl="2d"),
    "merged-stamp-2d-f32": dict(wirelength_strategy="merged",
                                density_strategy="stamp", dct_impl="2d",
                                dtype="float32"),
}
_TIMINGS: dict[str, float] = {}
_DESIGN = "adaptec1"
_SAMPLE_ITERS = 30


@pytest.mark.parametrize("config", list(_CONFIGS))
def test_fig8_config(benchmark, config):
    db = get_design(_DESIGN)
    params = PlacementParams(**_CONFIGS[config])
    placer = GlobalPlacer(db, params)
    # fixed iteration count: compare per-iteration kernel cost
    result = once(benchmark, lambda: placer.place(max_iters=_SAMPLE_ITERS))
    per_iter = result.runtime / result.iterations
    _TIMINGS[config] = per_iter
    record("fig8_strategy_scaling", {
        "config": config, "per_iteration_seconds": per_iter,
    })


def test_fig8_summary(benchmark):
    if "merged-stamp-2d" not in _TIMINGS:
        pytest.skip("config runs missing")
    once(benchmark, lambda: None)
    base = _TIMINGS["merged-stamp-2d"]
    print_header(
        f"Fig. 8 analog: GP per-iteration ratio on {_DESIGN}, "
        "normalized to merged-stamp-2d float64",
        ["config", "ratio"],
    )
    for config, seconds in _TIMINGS.items():
        print_row([config, seconds / base])
    record("fig8_strategy_scaling", {
        "config": "__summary__",
        "ratios": {c: t / base for c, t in _TIMINGS.items()},
    })
    # shape: monotone improvement along the fusion/vectorization axis
    order = list(_CONFIGS)
    for slower, faster in zip(order[:3], order[1:4]):
        assert _TIMINGS[slower] >= 0.8 * _TIMINGS[faster]
    assert _TIMINGS["ref-all-naive"] > 3.0 * base
