"""Captured-tape replay micro-benchmark: eager vs replay per iteration.

Builds the merged-strategy GP objective closure (forward + backward,
exactly the callable Nesterov evaluates every iteration), records it
once into a :class:`~repro.nn.tape.CapturedTape`, and times eager
evaluation against ``tape.replay()`` in interleaved blocks so CPU
frequency drift hits both sides equally.  Replay must be bit-identical
to eager (objective value and gradient) and at least ~1.3x faster per
iteration at the small operating point, where Python dispatch and
graph-(re)build overhead dominate the arithmetic.

Besides the usual ``benchmarks/results`` row, writes a summary to
``BENCH_capture.json`` at the repo root.
"""

import json
import os
import time

import numpy as np

from _support import get_design, once, print_header, print_row, record
from repro.core import GlobalPlacer, PlacementParams
from repro.nn.tape import capture

DESIGNS = ["adaptec1", "bigblue1"]
# fixed small operating point: per-iteration overhead (the thing capture
# removes) dominates at this size, independent of REPRO_SCALE
SCALE = 1600
WARMUP = 10
ROUNDS = 12
ITERS = 25
ROOT_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_capture.json",
)


def _closure_pair(db):
    """A primed GP objective closure and its captured tape."""
    params = PlacementParams(wirelength_strategy="merged")
    placer = GlobalPlacer(db, params)
    overflow = placer.overflow()
    placer.objective.gamma = placer.gamma_schedule(overflow)
    weight = placer._init_density_weight()
    placer.objective.density_weight = weight.value

    def eager():
        placer.pos.zero_grad()
        obj = placer.objective(placer.pos)
        obj.backward()
        return obj

    _, tape = capture(eager)
    assert tape is not None, "GP objective graph must be capture-safe"

    def replay():
        # the tape accumulates into the leaf's grad buffer; zeroing is
        # the caller's job, exactly as in GlobalPlacer's closure
        placer.pos.zero_grad()
        return tape.replay()

    return placer, eager, replay, tape


def _measure(db):
    placer, eager, replay, tape = _closure_pair(db)
    for _ in range(WARMUP):
        eager()
        replay()
    obj_e = float(eager().data)
    grad_e = placer.pos.grad.copy()
    obj_r = float(replay().data)
    grad_r = placer.pos.grad
    exact = obj_e == obj_r and np.array_equal(grad_e, grad_r)
    # interleaved rounds + median-of-round ratios: CPU frequency drift
    # hits the adjacent eager/replay blocks of a round equally, and the
    # median drops rounds hit by unrelated system noise
    rounds = []
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        for _ in range(ITERS):
            eager()
        t1 = time.perf_counter()
        for _ in range(ITERS):
            replay()
        t2 = time.perf_counter()
        rounds.append(((t1 - t0) / ITERS, (t2 - t1) / ITERS))
    t_eager = float(np.median([r[0] for r in rounds]))
    t_replay = float(np.median([r[1] for r in rounds]))
    ratio = float(np.median([r[0] / r[1] for r in rounds]))
    return t_eager, t_replay, ratio, exact, tape


def run(benchmark=None):
    print_header(
        "Captured-tape replay: GP objective closure, eager vs replay",
        ["design", "eager us/it", "replay us/it", "speedup", "bit-exact"],
    )
    summary = []
    for name in DESIGNS:
        db = get_design(name, scale=SCALE)
        t_e, t_r, ratio, exact, tape = _measure(db)
        print_row([
            name, f"{t_e * 1e6:.0f}", f"{t_r * 1e6:.0f}",
            f"{ratio:.2f}x", str(exact),
        ])
        summary.append({
            "design": name,
            "scale": SCALE,
            "us_per_iter_eager": t_e * 1e6,
            "us_per_iter_replay": t_r * 1e6,
            "speedup": ratio,
            "bit_exact": exact,
            "tape_replays": tape.replays,
        })
        record("capture", summary[-1])
    mean = sum(row["speedup"] for row in summary) / len(summary)
    print(f"-- mean speedup {mean:.2f}x (target >= 1.3x)")
    with open(ROOT_JSON, "w") as handle:
        json.dump({"mean_speedup": mean, "designs": summary}, handle, indent=1)
    if benchmark is not None:
        db = get_design(DESIGNS[0], scale=SCALE)
        _, _, replay, _ = _closure_pair(db)
        once(benchmark, replay)
    assert all(row["bit_exact"] for row in summary), summary
    assert mean >= 1.3, summary
    return summary


def test_capture_replay(benchmark):
    run(benchmark)


if __name__ == "__main__":
    run()
