"""Fig. 10 — wirelength kernel strategies.

Compares the net-by-net, atomic (Algorithm 1) and merged (Algorithm 2)
WA wirelength forward+backward implementations per design with float32.
Expected shape: merged fastest, atomic in between on the scatter-bound
side, net-by-net slowest (the paper reports merged 3.7x over net-by-net
and 1.8x over atomic on GPU; on CPU merged is >30% faster than
net-by-net while atomic is slower than net-by-net).
"""

import numpy as np
import pytest

from _support import get_design, print_header, print_row, record, suite_names
from repro.nn import Parameter
from repro.ops.wa_wirelength import STRATEGIES, WeightedAverageWirelength

_DESIGNS = suite_names("ispd2005")[:4]
_TIMINGS: dict[tuple[str, str], float] = {}


@pytest.mark.parametrize("design", _DESIGNS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig10_wirelength_kernel(benchmark, design, strategy):
    db = get_design(design)
    op = WeightedAverageWirelength(db, gamma=1.0, strategy=strategy,
                                   dtype=np.float32)
    pos = Parameter(
        np.concatenate([db.cell_x, db.cell_y]).astype(np.float32)
    )

    def forward_backward():
        pos.zero_grad()
        op(pos).backward()

    benchmark.pedantic(forward_backward, rounds=5, iterations=1,
                       warmup_rounds=1)
    _TIMINGS[(design, strategy)] = benchmark.stats["mean"]
    record("fig10_wirelength_ops", {
        "design": design, "strategy": strategy,
        "mean_seconds": benchmark.stats["mean"],
    })


def test_fig10_summary(benchmark):
    designs = {d for d, _ in _TIMINGS}
    if not designs:
        pytest.skip("kernel timings missing")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header(
        "Fig. 10 analog: WA wirelength fwd+bwd, float32 (seconds)",
        ["design", "net_by_net", "atomic", "merged", "merged speedup"],
    )
    speedups = []
    for design in sorted(designs):
        naive = _TIMINGS[(design, "net_by_net")]
        atomic = _TIMINGS[(design, "atomic")]
        merged = _TIMINGS[(design, "merged")]
        speedups.append(naive / merged)
        print_row([design, naive, atomic, merged, naive / merged])
    mean = sum(speedups) / len(speedups)
    print(f"-- merged over net-by-net: {mean:.1f}x (paper GPU: 3.7x)")
    record("fig10_wirelength_ops", {
        "design": "__summary__", "merged_speedup": mean,
    })
    for design in designs:
        assert _TIMINGS[(design, "merged")] < _TIMINGS[(design, "net_by_net")]
