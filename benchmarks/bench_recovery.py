"""Divergence-recovery benchmark: quality with and without rollback.

Sweeps ``density_weight_scale`` from balanced (1x) to badly
mis-calibrated (100x forces immediate divergence) and runs the GP loop
with recovery enabled and disabled.  For each configuration it reports
whether the run diverged, how many rollbacks fired, the returned HPWL
and its gap to the best iterate seen in the trace.  With recovery on,
the returned HPWL must never exceed the trace minimum (the
checkpoint-return guarantee) and the rollback overhead must stay small.
"""

import math
import time

import numpy as np

from _support import get_design, once, print_header, print_row, record
from repro.core import GlobalPlacer, PlacementParams

DESIGN = "adaptec1"
LAMBDA_SCALES = [1.0, 10.0, 100.0]
MAX_ITERS = 120


def _params(scale, enable_recovery):
    return PlacementParams(
        density_weight_scale=scale,
        enable_recovery=enable_recovery,
        divergence_ratio=2.0,
        min_global_iters=2,
        max_global_iters=MAX_ITERS,
        stop_overflow=0.0 if scale > 1.0 else 0.1,
        max_recoveries=3,
        recovery_lambda_damping=0.5,
        seed=9,
    )


def _run(db, scale, enable_recovery):
    placer = GlobalPlacer(db, _params(scale, enable_recovery))
    start = time.perf_counter()
    result = placer.place()
    runtime = time.perf_counter() - start
    trace = np.asarray(result.hpwl_trace, dtype=float)
    trace_best = float(np.nanmin(trace)) if trace.size else math.nan
    return {
        "hpwl": result.hpwl,
        "trace_best": trace_best,
        "overflow": result.overflow,
        "diverged": result.diverged,
        "recoveries": result.recoveries,
        "iterations": result.iterations,
        "runtime": runtime,
    }


def test_recovery(benchmark):
    print_header(
        "Divergence recovery: checkpoint return vs raw final iterate",
        ["lambda x", "recovery", "diverged", "rollbacks",
         "hpwl", "vs trace best", "iters"],
    )
    rows = []
    for scale in LAMBDA_SCALES:
        for enabled in (False, True):
            db = get_design(DESIGN)
            stats = _run(db, scale, enabled)
            gap = (stats["hpwl"] / stats["trace_best"] - 1.0
                   if math.isfinite(stats["trace_best"]) else math.nan)
            rows.append((scale, enabled, stats, gap))
            print_row([
                f"{scale:.0f}x", "on" if enabled else "off",
                str(stats["diverged"]), stats["recoveries"],
                f"{stats['hpwl']:.4e}", f"{gap * 100:+.2f}%",
                stats["iterations"],
            ])
            record("recovery", {
                "design": DESIGN,
                "lambda_scale": scale,
                "recovery": enabled,
                "diverged": stats["diverged"],
                "recoveries": stats["recoveries"],
                "hpwl": stats["hpwl"],
                "trace_best_hpwl": stats["trace_best"],
                "hpwl_gap_vs_trace_best": gap,
                "overflow": stats["overflow"],
                "iterations": stats["iterations"],
                "runtime_s": stats["runtime"],
            })

    # timing row for pytest-benchmark: the pathological case with rollback
    db = get_design(DESIGN)
    once(benchmark, lambda: _run(db, LAMBDA_SCALES[-1], True))

    for scale, enabled, stats, gap in rows:
        assert math.isfinite(stats["hpwl"])
        if stats["diverged"]:
            # the checkpoint-return guarantee: a diverged run hands back
            # the best-wirelength iterate, never the blown-up final one
            assert stats["hpwl"] <= stats["trace_best"] * (1 + 1e-9), \
                (scale, enabled, stats)
        if not enabled:
            assert stats["recoveries"] == 0
    # the pathological configuration actually exercises the rollback path
    assert any(stats["recoveries"] >= 1 for _, enabled, stats, _ in rows
               if enabled), "no rollback fired across the sweep"
