"""Fig. 7 — GP runtime across designs, implementations and precisions.

The paper plots GP runtime per ISPD2005/industrial design for RePlAce
(1..40 threads) and DREAMPlace (CPU/GPU, DAC/TCAD versions, float32/64).
The analogs here: reference kernels (baseline), vectorized kernels with
float64, and vectorized with float32.
"""

import pytest

from _support import get_design, once, print_header, print_row, record, suite_names
from repro.baseline import ReplacePlacer
from repro.core import GlobalPlacer, PlacementParams

_CONFIGS = {
    "reference-f64": None,  # baseline placeholder
    "vectorized-f64": PlacementParams(dtype="float64"),
    "vectorized-f32": PlacementParams(dtype="float32"),
}
_RESULTS: dict[str, dict[str, float]] = {}
_DESIGNS = suite_names("ispd2005")[:4]


@pytest.mark.parametrize("design", _DESIGNS)
@pytest.mark.parametrize("config", list(_CONFIGS))
def test_fig7_gp_runtime(benchmark, design, config):
    db = get_design(design)
    if config == "reference-f64":
        placer = ReplacePlacer(db, PlacementParams(),
                               timing_mode="extrapolate")
        result = once(benchmark, lambda: placer.run(detailed=False))
        gp_time = result.gp_time
        hpwl = result.hpwl_global
    else:
        params = _CONFIGS[config]
        gp = GlobalPlacer(db, params)
        result = once(benchmark, gp.place)
        gp_time = result.runtime
        hpwl = result.hpwl
    _RESULTS.setdefault(design, {})[config] = gp_time
    record("fig7_gp_runtime", {
        "design": design, "config": config,
        "gp_seconds": gp_time, "hpwl": hpwl,
    })


def test_fig7_summary(benchmark):
    complete = {d: r for d, r in _RESULTS.items() if len(r) == 3}
    if not complete:
        pytest.skip("runs missing")
    once(benchmark, lambda: None)
    print_header("Fig. 7 analog: GP runtime (seconds)",
                 ["design"] + list(_CONFIGS))
    f32_speedups = []
    for design, row in complete.items():
        print_row([design] + [row[c] for c in _CONFIGS])
        f32_speedups.append(row["vectorized-f64"] / row["vectorized-f32"])
    mean32 = sum(f32_speedups) / len(f32_speedups)
    print(f"-- float32 speedup over float64: {mean32:.2f}x "
          "(paper: ~1.3-1.4x)")
    record("fig7_gp_runtime", {
        "design": "__summary__", "f32_speedup": mean32,
    })
    for design, row in complete.items():
        assert row["vectorized-f64"] < row["reference-f64"]
