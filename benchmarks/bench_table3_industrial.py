"""Table III — industrial benchmarks with float64.

Same comparison as Table II on the industrial-analog suite, including
the large scalability design ``design6`` (the paper's 10M-cell design on
which RePlAce crashed and its runtime had to be estimated; we apply the
same per-iteration extrapolation to the baseline on every design).
Checks the paper's near-linear scalability claim: GP runtime grows
roughly linearly from design1 to design6.
"""

import pytest

from _support import get_design, once, print_header, print_row, record, suite_names
from repro.baseline import ReplacePlacer
from repro.core import DreamPlacer, PlacementParams

# DP on the scalability design is the external-tool stage in the paper;
# keep one pass so the bench emphasizes GP (the paper's focus)
_PARAMS = PlacementParams(dtype="float64", detailed_passes=1)
_RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize("design", suite_names("industrial"))
def test_table3_row(benchmark, design):
    db = get_design(design)
    dream = once(benchmark, lambda: DreamPlacer(db, _PARAMS).run())

    db_base = get_design(design)
    base = ReplacePlacer(db_base, _PARAMS, timing_mode="extrapolate").run(
        detailed=False
    )

    row = {
        "design": design,
        "cells": db.num_cells,
        "dream_hpwl": dream.hpwl_final,
        "dream_gp": dream.times.global_place,
        "dream_lg": dream.times.legalize,
        "dream_dp": dream.times.detailed,
        "base_hpwl": base.hpwl_final,
        "base_gp": base.gp_time,
        "base_ip": base.init_place_time,
        "iterations": dream.iterations,
        "legal": bool(dream.legality.legal),
    }
    _RESULTS[design] = row
    record("table3_industrial", row)
    assert dream.legality.legal


def test_table3_summary(benchmark):
    if not _RESULTS:
        pytest.skip("per-design rows did not run")
    once(benchmark, lambda: None)
    print_header(
        "Table III analog: industrial, float64",
        ["design", "cells", "base GP(s)", "drm GP(s)", "GP x",
         "HPWL ratio"],
    )
    for design, row in _RESULTS.items():
        print_row([
            design, row["cells"], row["base_gp"], row["dream_gp"],
            row["base_gp"] / max(row["dream_gp"], 1e-9),
            row["base_hpwl"] / max(row["dream_hpwl"], 1e-9),
        ])

    # scalability shape: GP time per cell roughly flat design1 -> design6
    if "design1" in _RESULTS and "design6" in _RESULTS:
        small = _RESULTS["design1"]
        big = _RESULTS["design6"]
        per_cell_small = small["dream_gp"] / small["cells"]
        per_cell_big = big["dream_gp"] / big["cells"]
        growth = per_cell_big / per_cell_small
        print(f"-- GP seconds/cell design6 vs design1: {growth:.2f}x "
              "(paper: nearly linear scalability, ~1x)")
        record("table3_industrial", {
            "design": "__summary__",
            "per_cell_growth": growth,
        })
        assert growth < 4.0
