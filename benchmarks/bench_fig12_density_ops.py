"""Fig. 12 — full density operator forward+backward comparison.

Times the complete density pipeline (scatter -> Poisson solve ->
gather) per design: the DAC-version analog (naive scatter + row-column
2N-point DCT) against the TCAD-version analog (offset-parallel scatter
+ fast transforms), plus a reference-kernel "single thread" analog.
Paper shape: TCAD version 1.5-2.1x over DAC version on GPU; 3.1x from
1 to 40 threads on CPU.
"""

import numpy as np
import pytest

from _support import get_design, print_header, print_row, record, suite_names
from repro.geometry import BinGrid
from repro.nn import Parameter
from repro.ops.density_op import ElectricDensity

_DESIGNS = suite_names("ispd2005")[:4]

_CONFIGS = {
    "dac-version": dict(strategy="naive", dct_impl="2n"),
    "tcad-sorted": dict(strategy="sorted", dct_impl="n"),
    "tcad-stamp": dict(strategy="stamp", dct_impl="2d"),
}
_TIMINGS: dict[tuple[str, str], float] = {}


@pytest.mark.parametrize("design", _DESIGNS)
@pytest.mark.parametrize("config", list(_CONFIGS))
def test_fig12_density_op(benchmark, design, config):
    db = get_design(design)
    grid = BinGrid(db.region, 128, 128)
    op = ElectricDensity(db, grid, dtype=np.float32, **_CONFIGS[config])
    pos = Parameter(
        np.concatenate([db.cell_x, db.cell_y]).astype(np.float32)
    )

    def forward_backward():
        pos.zero_grad()
        op(pos).backward()

    benchmark.pedantic(forward_backward, rounds=3, iterations=1,
                       warmup_rounds=1)
    _TIMINGS[(design, config)] = benchmark.stats["mean"]
    record("fig12_density_ops", {
        "design": design, "config": config,
        "mean_seconds": benchmark.stats["mean"],
    })


def test_fig12_summary(benchmark):
    designs = {d for d, _ in _TIMINGS}
    if not designs:
        pytest.skip("timings missing")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header(
        "Fig. 12 analog: density fwd+bwd, float32 (seconds)",
        ["design"] + list(_CONFIGS) + ["tcad speedup"],
    )
    speedups = []
    for design in sorted(designs):
        row = [_TIMINGS[(design, c)] for c in _CONFIGS]
        speedup = row[0] / row[-1]
        speedups.append(speedup)
        print_row([design] + row + [speedup])
    mean = sum(speedups) / len(speedups)
    print(f"-- TCAD-analog over DAC-analog: {mean:.1f}x "
          "(paper GPU: 1.5-2.1x)")
    record("fig12_density_ops", {
        "design": "__summary__", "tcad_speedup": mean,
    })
    for design in designs:
        assert _TIMINGS[(design, "tcad-stamp")] < \
            _TIMINGS[(design, "dac-version")]
