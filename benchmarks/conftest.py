"""Benchmark session configuration."""

import sys
import os

import pytest

sys.path.insert(0, os.path.dirname(__file__))


def pytest_collection_modifyitems(items):
    """Mark every benchmark so ``-m 'not bench'`` deselects the suite."""
    for item in items:
        item.add_marker(pytest.mark.bench)
