"""Table II — ISPD 2005 benchmarks with float64.

Reproduces the paper's comparison of RePlAce (40 threads) against
DREAMPlace: HPWL and per-stage runtime (GP / LG / DP / IO) per design,
plus the suite-wide ratios.  Here "RePlAce" is the reference-kernel
baseline with bound-to-bound initial placement; "DREAMPlace" is the
vectorized implementation with random-center initialization (the CPU
and GPU columns of the paper collapse onto one machine, so the measured
GP speedup corresponds to the paper's kernel-organization gap rather
than the 38x CPU->GPU factor — see EXPERIMENTS.md).
"""

import tempfile

import pytest

from _support import get_design, once, print_header, print_row, record, suite_names
from repro.baseline import ReplacePlacer
from repro.bookshelf import read_bookshelf, write_bookshelf
from repro.core import DreamPlacer, PlacementParams

_PARAMS = PlacementParams(dtype="float64", detailed_passes=1)
_RESULTS: dict[str, dict] = {}


def _measure_io(db) -> float:
    import time

    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        aux = write_bookshelf(db, tmp)
        read_bookshelf(aux)
        return time.perf_counter() - start


@pytest.mark.parametrize("design", suite_names("ispd2005"))
def test_table2_row(benchmark, design):
    db = get_design(design)
    io_time = _measure_io(db)

    dream = once(benchmark, lambda: DreamPlacer(db, _PARAMS).run())

    db_base = get_design(design)
    base = ReplacePlacer(db_base, _PARAMS, timing_mode="extrapolate").run()

    row = {
        "design": design,
        "cells": db.num_cells,
        "nets": db.num_nets,
        "dream_hpwl": dream.hpwl_final,
        "dream_gp": dream.times.global_place,
        "dream_lg": dream.times.legalize,
        "dream_dp": dream.times.detailed,
        "dream_io": io_time,
        "base_hpwl": base.hpwl_final,
        "base_gp": base.gp_time,
        "base_lg": base.times.legalize,
        "base_dp": base.times.detailed,
        "legal": bool(dream.legality.legal),
    }
    _RESULTS[design] = row
    record("table2_ispd2005", row)
    assert dream.legality.legal
    assert dream.hpwl_final <= 1.10 * base.hpwl_final


def test_table2_summary(benchmark):
    if not _RESULTS:
        pytest.skip("per-design rows did not run")
    once(benchmark, lambda: None)
    print_header(
        "Table II analog: ISPD2005, float64",
        ["design", "cells", "base HPWL", "base GP(s)", "drm HPWL",
         "drm GP(s)", "GP x", "HPWL ratio"],
    )
    gp_ratios = []
    hpwl_ratios = []
    for design, row in _RESULTS.items():
        gp_ratio = row["base_gp"] / max(row["dream_gp"], 1e-9)
        hpwl_ratio = row["base_hpwl"] / max(row["dream_hpwl"], 1e-9)
        gp_ratios.append(gp_ratio)
        hpwl_ratios.append(hpwl_ratio)
        print_row([design, row["cells"], row["base_hpwl"], row["base_gp"],
                   row["dream_hpwl"], row["dream_gp"], gp_ratio,
                   hpwl_ratio])
    mean_gp = sum(gp_ratios) / len(gp_ratios)
    mean_quality = sum(hpwl_ratios) / len(hpwl_ratios)
    print(f"-- mean GP speedup {mean_gp:.1f}x "
          f"(paper: 38x GPU vs 40-thread CPU); "
          f"mean HPWL ratio baseline/dream {mean_quality:.4f} "
          f"(paper: 1.002)")
    record("table2_ispd2005", {
        "design": "__summary__",
        "mean_gp_speedup": mean_gp,
        "mean_hpwl_ratio": mean_quality,
    })
    # shape checks: big speedup, no quality loss
    assert mean_gp > 5.0
    assert 0.97 < mean_quality < 1.05
