"""Fig. 6 — work partitioning in the density scatter/gather kernels.

The paper sweeps how many GPU threads update one cell (1x1 .. 4x4) in
the density map kernel on bigblue4, with float32 and float64.  The CPU
analog is the work-partitioning strategy: ``naive`` (one unit of work
per cell, load-imbalanced), ``sorted`` (area-grouped batches = warp
balancing) and ``stamp`` (offset-parallel = multiple threads per cell).
Numbers are normalized to ``naive`` float64, like the figure.
"""

import time

import numpy as np
import pytest

from _support import get_design, print_header, print_row, record
from repro.geometry import BinGrid
from repro.ops.density_map import STRATEGIES, gather_field, scatter_density

_TIMINGS: dict[tuple[str, str], float] = {}


def _density_workload(dtype):
    db = get_design("bigblue4")
    movable = db.movable_index
    grid = BinGrid(db.region, 128, 128)
    xl = db.cell_x[movable].astype(dtype)
    yl = db.cell_y[movable].astype(dtype)
    w = db.cell_width[movable].astype(dtype)
    h = db.cell_height[movable].astype(dtype)
    weight = np.ones(movable.shape[0], dtype=dtype)
    field = np.asarray(
        np.random.default_rng(0).normal(size=grid.shape), dtype=dtype
    )
    return grid, xl, yl, w, h, weight, field


@pytest.mark.parametrize("dtype_name", ["float64", "float32"])
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig6_strategy(benchmark, strategy, dtype_name):
    dtype = np.dtype(dtype_name)
    grid, xl, yl, w, h, weight, field = _density_workload(dtype)

    def forward_backward():
        rho = scatter_density(grid, xl, yl, w, h, weight,
                              strategy=strategy, dtype=dtype)
        fx = gather_field(grid, field, xl, yl, w, h, weight,
                          strategy=strategy, dtype=dtype)
        return rho, fx

    start = time.perf_counter()
    benchmark.pedantic(forward_backward, rounds=3, iterations=1,
                       warmup_rounds=1)
    _TIMINGS[(strategy, dtype_name)] = benchmark.stats["mean"]
    record("fig6_density_scatter", {
        "strategy": strategy, "dtype": dtype_name,
        "mean_seconds": benchmark.stats["mean"],
    })


def test_fig6_summary(benchmark):
    if (("naive", "float64")) not in _TIMINGS:
        pytest.skip("strategy timings did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = _TIMINGS[("naive", "float64")]
    print_header(
        "Fig. 6 analog: density scatter+gather work partitioning "
        "(bigblue4), normalized to naive/float64",
        ["strategy", "dtype", "normalized"],
    )
    for (strategy, dtype_name), seconds in sorted(_TIMINGS.items()):
        print_row([strategy, dtype_name, seconds / base])
    # shape: partitioned strategies beat the per-cell loop
    for dtype_name in ("float64", "float32"):
        key = ("stamp", dtype_name)
        if key in _TIMINGS:
            assert _TIMINGS[key] < _TIMINGS[("naive", dtype_name)]
