#!/usr/bin/env python
"""Render EXPERIMENTS.md from benchmarks/results/*.json.

Run after ``pytest benchmarks/ --benchmark-only``::

    python benchmarks/render_experiments.py > EXPERIMENTS.md
"""

from __future__ import annotations

import json
import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Reproduction environment: single CPU core, pure Python/numpy (no GPU,
no PyTorch); synthetic benchmark suites at 1/SCALE of the paper's cell
counts (SCALE shown per table).  Absolute numbers are therefore not
comparable to the paper's; each experiment checks the *shape* — who
wins, by roughly what factor, where the crossovers fall.  "Baseline"
is this repo's RePlAce-style reference implementation (bound-to-bound
initial placement + per-net/per-cell loop kernels + row-column
2N-point DCT); "DREAMPlace" is the vectorized implementation with
random-center initialization — the same algorithm organized the way
the paper organizes its GPU kernels.  Baseline nonlinear-GP runtimes
are obtained by per-iteration extrapolation (the same estimation the
paper applies to RePlAce on its 10M-cell design).

Regenerate everything with ``pytest benchmarks/ --benchmark-only``,
then re-render this file with
``python benchmarks/render_experiments.py > EXPERIMENTS.md``.
"""


def load(name: str) -> list[dict]:
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        return json.load(handle)


def last_run(rows: list[dict]) -> list[dict]:
    """Keep only the newest entry per key (design/config/...)."""
    best: dict[str, dict] = {}
    for row in rows:
        key = json.dumps(
            {k: row.get(k) for k in ("design", "config", "strategy",
                                     "dtype", "solver", "transform",
                                     "impl", "size", "ablation", "part")},
            sort_keys=True,
        )
        best[key] = row  # later entries overwrite earlier ones
    return list(best.values())


def fmt(value, digits=3):
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if 0 < abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.{digits}f}"
    return str(value)


def table(headers: list[str], rows: list[list]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(out)


def section_table2() -> str:
    rows = last_run(load("table2_ispd2005"))
    designs = [r for r in rows if r.get("design", "").startswith(
        ("adaptec", "bigblue"))]
    summary = next((r for r in rows if r.get("design") == "__summary__"),
                   None)
    if not designs:
        return ""
    scale = designs[0].get("scale", "?")
    body = table(
        ["design", "cells", "base HPWL", "base GP(s)", "drm HPWL",
         "drm GP(s)", "GP speedup", "HPWL ratio"],
        [[r["design"], r["cells"], r["base_hpwl"], r["base_gp"],
          r["dream_hpwl"], r["dream_gp"],
          r["base_gp"] / max(r["dream_gp"], 1e-9),
          r["base_hpwl"] / max(r["dream_hpwl"], 1e-9)]
         for r in sorted(designs, key=lambda d: d["design"])],
    )
    notes = ""
    if summary:
        notes = (
            f"\n**Measured:** mean GP speedup "
            f"{summary['mean_gp_speedup']:.1f}x at HPWL ratio "
            f"{summary['mean_hpwl_ratio']:.4f}.  "
            "**Paper:** 38x (GPU vs 40-thread RePlAce) at ratio 1.002, "
            "and 2x for the vectorized CPU build.  Shape holds: a large "
            "kernel-organization speedup with no quality loss.  Our "
            "measured factor folds the vectorization gap *and* the "
            "random-vs-B2B initialization saving into one number."
        )
    return (f"## Table II — ISPD2005 analogs (float64, 1/{scale} size)\n\n"
            + body + notes + "\n")


def section_table3() -> str:
    rows = last_run(load("table3_industrial"))
    designs = [r for r in rows if r.get("design", "").startswith("design")]
    summary = next((r for r in rows if r.get("design") == "__summary__"),
                   None)
    if not designs:
        return ""
    scale = designs[0].get("scale", "?")
    body = table(
        ["design", "cells", "base GP(s)", "drm GP(s)", "GP speedup",
         "HPWL ratio", "iterations"],
        [[r["design"], r["cells"], r["base_gp"], r["dream_gp"],
          r["base_gp"] / max(r["dream_gp"], 1e-9),
          r["base_hpwl"] / max(r["dream_hpwl"], 1e-9),
          r["iterations"]]
         for r in sorted(designs, key=lambda d: d["design"])],
    )
    notes = ""
    if summary:
        notes = (
            f"\n**Measured:** GP seconds/cell grows "
            f"{summary['per_cell_growth']:.2f}x from design1 to design6 "
            "(8x more cells).  **Paper:** 47x GP speedup; nearly linear "
            "scalability up to 10M cells (design6's RePlAce runtime was "
            "itself an extrapolation after an out-of-memory crash — we "
            "apply the same per-iteration extrapolation to the baseline "
            "on every design)."
        )
    return (f"## Table III — industrial analogs (float64, 1/{scale} "
            "size)\n\n" + body + notes + "\n")


def section_table4() -> str:
    rows = last_run(load("table4_solvers"))
    cells = [r for r in rows if r.get("solver")]
    summary = next((r for r in rows if r.get("design") == "__summary__"),
                   None)
    if not cells:
        return ""
    by_design: dict[str, dict] = {}
    for r in cells:
        by_design.setdefault(r["design"], {})[r["solver"]] = r
    body_rows = []
    for design in sorted(by_design):
        row = by_design[design]
        if len(row) < 3:
            continue
        body_rows.append([
            design,
            row["nesterov"]["hpwl"], row["nesterov"]["gp"],
            row["adam"]["hpwl"], row["adam"]["gp"],
            row["sgd"]["hpwl"], row["sgd"]["gp"],
        ])
    body = table(
        ["design", "nesterov HPWL", "GP(s)", "adam HPWL", "GP(s)",
         "sgd HPWL", "GP(s)"], body_rows,
    )
    notes = ""
    if summary:
        notes = (
            f"\n**Measured:** Adam HPWL ratio "
            f"{summary['adam_hpwl_ratio']:.3f} at GP ratio "
            f"{summary['adam_gp_ratio']:.2f}x; SGD+momentum "
            f"{summary['sgd_hpwl_ratio']:.3f} at "
            f"{summary['sgd_gp_ratio']:.2f}x (vs Nesterov = 1.0).  "
            "**Paper:** Adam 0.997 at 1.78x; SGD 1.012 at 1.69x.  "
            "Quality shape holds (Adam competitive/slightly better, SGD "
            "worse).  The paper's runtime gap does not reproduce at "
            "this scale: all solvers stop at the same overflow target "
            "in a similar iteration count, and one Nesterov iteration "
            "(with its line-search re-evaluations) costs about as much "
            "as one Adam iteration on this substrate.  SGD on the "
            "bigblue3 analog is an outlier (its clustered GP output "
            "also exposed a greedy-legalizer limitation, now handled "
            "by tetris_legalize's packed-mode retry) — echoing the "
            "paper's observation that these solvers need per-design "
            "learning-rate care."
        )
    return "## Table IV — solver comparison\n\n" + body + notes + "\n"


def section_table5() -> str:
    rows = last_run(load("table5_routability"))
    designs = [r for r in rows if r.get("design", "").startswith("superblue")
               and "__" not in r.get("design", "")]
    summary = next((r for r in rows if r.get("design") == "__summary__"),
                   None)
    reference = next(
        (r for r in rows if "__reference" in r.get("design", "")), None
    )
    if not designs:
        return ""
    body = table(
        ["design", "plain RC", "plain sHPWL", "driven RC",
         "driven sHPWL", "NL(s)", "GR(s)", "inflation rounds"],
        [[r["design"], r["plain_rc"], r["plain_shpwl"], r["rc"],
          r["shpwl"], r["nl"], r["gr"], r["rounds"]]
         for r in sorted(designs, key=lambda d: d["design"])],
    )
    notes = "\n**Measured:** "
    if summary:
        notes += (
            f"the inflation flow matches or beats plain sHPWL on "
            f"{summary['shpwl_win_fraction']:.0%} of designs. "
        )
    if reference:
        notes += (
            f"Reference-kernel NL time on {reference['design'].split('__')[0]}: "
            f"{reference['nl']:.1f}s. "
        )
    notes += (
        "**Paper:** DREAMPlace-GPU achieves the same sHPWL/RC as RePlAce "
        "with 20x faster NL and the router at ~70% of GP time.  Our "
        "router substrate is much faster than single-threaded NCTUgr "
        "relative to NL, so GR does *not* dominate here; the "
        "quality-side shape (inflation trades HPWL for RC and wins on "
        "sHPWL under congestion) reproduces."
    )
    return ("## Table V — DAC2012 routability-driven analogs "
            "(float32)\n\n" + body + notes + "\n")


def section_breakdown(name: str, title: str, paper_note: str) -> str:
    """Key/value dump for heterogeneous result rows (fig3/fig9/ablations)."""
    rows = last_run(load(name))
    if not rows:
        return ""
    lines = []
    for row in rows:
        items = [
            f"{k}={fmt(v)}" for k, v in row.items()
            if k not in ("timestamp", "scale")
        ]
        lines.append("- " + ", ".join(items))
    return f"## {title}\n\n" + "\n".join(lines) + f"\n\n{paper_note}\n"


def section_fig(name: str, title: str, paper_note: str,
                headers: list[str], keys: list[str],
                sort_keys: list[str]) -> str:
    rows = [r for r in last_run(load(name))
            if all(k in r for k in keys)]
    if not rows:
        return ""
    rows.sort(key=lambda r: tuple(str(r.get(k)) for k in sort_keys))
    body = table(headers, [[r[k] for k in keys] for r in rows])
    return f"## {title}\n\n{body}\n\n{paper_note}\n"


def main() -> None:
    sections = [
        PREAMBLE,
        section_table2(),
        section_table3(),
        section_table4(),
        section_table5(),
        section_breakdown(
            "fig3_baseline_breakdown",
            "Fig. 3 — baseline runtime breakdown (bigblue4 analog)",
            "**Paper:** GP (initial placement + nonlinear) is ~90% of "
            "RePlAce's runtime; GP-IP alone is 25-30% of GP.  Our "
            "sparse-linear B2B initializer is comparatively much faster "
            "than the reference nonlinear kernels, so GP still "
            "dominates but GP-IP's share is smaller.",
        ),
        section_fig(
            "fig6_density_scatter",
            "Fig. 6 — density scatter/gather work partitioning",
            "**Paper:** 2x2 threads per cell is 20-30% faster than 1x1 "
            "on GPU.  CPU analog: the offset-parallel ``stamp`` scheme "
            "and the footprint-grouped ``sorted`` scheme both beat the "
            "per-cell ``naive`` loop by far larger factors (Python loop "
            "overhead amplifies the imbalance the figure measures).",
            ["strategy", "dtype", "mean seconds"],
            ["strategy", "dtype", "mean_seconds"],
            ["strategy", "dtype"],
        ),
        section_fig(
            "fig7_gp_runtime",
            "Fig. 7 — GP runtime by implementation and precision",
            "**Paper:** GPU implementations are fastest everywhere; "
            "float32 gives a further 1.3-1.4x.  Measured: the "
            "vectorized build beats the reference everywhere; float32 "
            "is *not* faster on this numpy substrate (no SIMD-width "
            "win, extra casts) — an honest substrate divergence.",
            ["design", "config", "GP seconds"],
            ["design", "config", "gp_seconds"],
            ["design", "config"],
        ),
        section_fig(
            "fig8_strategy_scaling",
            "Fig. 8 — normalized GP cost across kernel configurations",
            "**Paper:** runtime ratios saturate with CPU threads; the "
            "TCAD GPU version is the 1.0 reference.  CPU analog: each "
            "step along the fusion/vectorization axis (reference -> "
            "atomic -> merged -> merged+stamp+2D) buys a large, "
            "then diminishing, factor.",
            ["config", "per-iteration seconds"],
            ["config", "per_iteration_seconds"],
            ["config"],
        ),
        section_breakdown(
            "fig9_breakdown",
            "Fig. 9 — DREAMPlace runtime breakdown (bigblue4 analog)",
            "**Paper:** (a) GP+LG are 6.2% of the flow (DP via external "
            "tool dominates); (b) density is 73.4% of one GP "
            "forward+backward, wirelength 26.5%.  Measured shape agrees "
            "on both: DP dominates the flow, density dominates the "
            "pass.",
        ),
        section_fig(
            "fig10_wirelength_ops",
            "Fig. 10 — WA wirelength kernel strategies (float32)",
            "**Paper:** merged (Alg. 2) is 3.7x over net-by-net and "
            "1.8x over atomic (Alg. 1) on GPU; on CPU merged is >30% "
            "faster than net-by-net.  Measured: the same ordering, with "
            "a much larger merged-vs-net-by-net factor because the "
            "net-by-net loop pays Python per-net overhead (it plays the "
            "role of the paper's underutilized |E|-thread kernel).",
            ["design", "strategy", "mean seconds"],
            ["design", "strategy", "mean_seconds"],
            ["design", "strategy"],
        ),
        section_fig(
            "fig11_dct",
            "Fig. 11 — DCT/IDCT algorithms",
            "**Paper (GPU):** N-point beats 2N-point (2.1x), and the "
            "single 2-D FFT (Alg. 4) is fastest (5x) because it "
            "amortizes kernel launches.  **Measured (1 CPU core):** "
            "both fast algorithms beat 2N-point by similar factors, but "
            "the N-point row-column form beats the single 2-D FFT — "
            "one-sided real FFTs do half the work of the full complex "
            "2-D FFT and there are no kernel launches to amortize.  "
            "This is the one place the paper's ordering inverts on this "
            "substrate.",
            ["transform", "impl", "size", "mean seconds"],
            ["transform", "impl", "size", "mean_seconds"],
            ["transform", "size", "impl"],
        ),
        section_fig(
            "fig12_density_ops",
            "Fig. 12 — density operator forward+backward (float32)",
            "**Paper:** the TCAD implementation is 1.5-2.1x over the "
            "DAC version on GPU, 3.1x from 1 to 40 CPU threads.  "
            "Measured: TCAD-analog (stamp scatter + fast transforms) "
            "over DAC-analog (naive scatter + 2N transforms) "
            "reproduces with larger factors, for the same "
            "Python-loop-overhead reason as Fig. 10.",
            ["design", "config", "mean seconds"],
            ["design", "config", "mean_seconds"],
            ["design", "config"],
        ),
        section_breakdown(
            "ablations",
            "Ablations — claims made in the paper's text",
            "Random-center vs B2B initialization (paper: <0.04% quality "
            "difference, Section III); filler cells; the TCAD mu tweak "
            "(Section III-C); gamma annealing (Section II-C).  Each row "
            "records the measured values of both variants.",
        ),
    ]
    print("\n".join(s for s in sections if s))


if __name__ == "__main__":
    sys.exit(main())
