"""Table V — DAC 2012 routability-driven placement.

Runs the Section III-F flow (GP with cell inflation driven by the
global router) on the DAC2012-analog suite and reports sHPWL, RC and
the NL / GR / LG / DP runtime split.  Routing capacity is calibrated
per design so the wirelength-driven placement is mildly congested
(RC > 100), the regime the DAC2012 contest sets are provisioned for;
the flow must then trade some HPWL for lower RC and win on sHPWL.
"""

import pytest

from _support import get_design, once, print_header, print_row, record, suite_names
from repro.core import DreamPlacer, PlacementParams
from repro.core.metrics import scaled_hpwl
from repro.route.router import GlobalRouter, calibrate_capacity

# the RePlAce binary in the paper used float32 for this experiment
_TILES = 24
_LAYERS = 4
_BASE = PlacementParams(dtype="float32", detailed_passes=1,
                        route_num_tiles=_TILES, route_num_layers=_LAYERS)

_RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize("design", suite_names("dac2012"))
def test_table5_row(benchmark, design):
    # wirelength-driven reference placement of the same design
    db_plain = get_design(design)
    plain = DreamPlacer(db_plain, _BASE).run()
    capacity = calibrate_capacity(db_plain, _TILES, _LAYERS)
    plain_route = GlobalRouter(db_plain, _TILES, _LAYERS, capacity).route()
    plain_shpwl = scaled_hpwl(plain.hpwl_final, plain_route.rc)

    # routability-driven flow with the same capacities
    db = get_design(design)
    params = _BASE.with_overrides(routability=True,
                                  route_tile_capacity=capacity)
    driven = once(benchmark, lambda: DreamPlacer(db, params).run())

    row = {
        "design": design,
        "cells": db.num_cells,
        "capacity": capacity,
        "plain_rc": plain_route.rc,
        "plain_shpwl": plain_shpwl,
        "shpwl": driven.shpwl,
        "rc": driven.rc,
        "nl": driven.times.global_place,
        "gr": driven.times.global_route,
        "lg": driven.times.legalize,
        "dp": driven.times.detailed,
        "rounds": driven.inflation_rounds,
        "router_calls": driven.router_calls,
        "legal": bool(driven.legality.legal),
    }
    _RESULTS[design] = row
    record("table5_routability", row)
    assert driven.legality.legal
    assert driven.rc >= 100.0


def test_table5_reference_nl_gap(benchmark):
    """One design with reference kernels: the paper's NL speedup column."""
    design = suite_names("dac2012")[0]
    row = _RESULTS.get(design)
    capacity = row["capacity"] if row else 0
    db = get_design(design)
    params = _BASE.with_overrides(
        routability=True, route_tile_capacity=capacity,
        wirelength_strategy="net_by_net", density_strategy="naive",
        dct_impl="2n",
    )
    reference = once(benchmark, lambda: DreamPlacer(db, params).run())
    record("table5_routability", {
        "design": f"{design}__reference",
        "nl": reference.times.global_place,
        "gr": reference.times.global_route,
        "shpwl": reference.shpwl,
        "rc": reference.rc,
    })
    if row is not None:
        speedup = reference.times.global_place / max(row["nl"], 1e-9)
        quality = reference.shpwl / max(row["shpwl"], 1e-9)
        print(f"\n-- {design}: reference-kernel NL / vectorized NL = "
              f"{speedup:.1f}x (paper: ~20x); sHPWL ratio {quality:.3f} "
              "(paper: ~1.01)")
        assert speedup > 3.0


def test_table5_summary(benchmark):
    if not _RESULTS:
        pytest.skip("per-design rows did not run")
    once(benchmark, lambda: None)
    print_header(
        "Table V analog: DAC2012 routability-driven, float32",
        ["design", "plain RC", "plain sHPWL", "RC", "sHPWL", "NL(s)",
         "GR(s)", "rounds"],
    )
    wins = 0
    for design, row in _RESULTS.items():
        print_row([design, row["plain_rc"], row["plain_shpwl"],
                   row["rc"], row["shpwl"], row["nl"], row["gr"],
                   row["rounds"]])
        if row["shpwl"] <= row["plain_shpwl"] * 1.02:
            wins += 1
    frac = wins / len(_RESULTS)
    print(f"-- routability flow matches or beats plain sHPWL on "
          f"{wins}/{len(_RESULTS)} designs")
    record("table5_routability", {
        "design": "__summary__", "shpwl_win_fraction": frac,
    })
    # shape: inflation pays off on congested designs
    assert frac >= 0.5
