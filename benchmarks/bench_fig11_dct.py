"""Fig. 11 — DCT/IDCT algorithm comparison.

Times the 2N-point FFT, N-point FFT (Algorithm 3) and single 2-D FFT
(Algorithm 4) implementations of the 2-D DCT and IDCT on square maps,
float32-sized like the paper (map sizes scaled down with the designs).
Expected shape: 2-D > N-point > 2N-point.
"""

import numpy as np
import pytest

from _support import print_header, print_row, record
from repro.ops import dct as D

SIZES = (128, 256, 512)
_TIMINGS: dict[tuple[str, str, int], float] = {}

_DCT_IMPLS = {"2n": "2n", "n": "n", "2d": "2d"}


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("impl", list(_DCT_IMPLS))
@pytest.mark.parametrize("transform", ["dct", "idct"])
def test_fig11_transform(benchmark, transform, impl, size):
    rng = np.random.default_rng(size)
    x = rng.normal(size=(size, size)).astype(np.float32)
    fn = D.dct2d if transform == "dct" else D.idct2d

    benchmark.pedantic(lambda: fn(x, impl=impl), rounds=7, iterations=1,
                       warmup_rounds=2)
    _TIMINGS[(transform, impl, size)] = benchmark.stats["mean"]
    record("fig11_dct", {
        "transform": transform, "impl": impl, "size": size,
        "mean_seconds": benchmark.stats["mean"],
    })


def test_fig11_summary(benchmark):
    if not _TIMINGS:
        pytest.skip("transform timings missing")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for transform in ("dct", "idct"):
        print_header(
            f"Fig. 11 analog: 2-D {transform.upper()} (seconds)",
            ["size", "2n", "n", "2d", "2d speedup"],
        )
        for size in SIZES:
            try:
                t2n = _TIMINGS[(transform, "2n", size)]
                tn = _TIMINGS[(transform, "n", size)]
                t2d = _TIMINGS[(transform, "2d", size)]
            except KeyError:
                continue
            print_row([size, t2n, tn, t2d, t2n / t2d])
    record("fig11_dct", {"transform": "__summary__"})
    # shape: both fast algorithms clearly beat the 2N-point baseline.
    # (On the GPU of the paper the single 2-D FFT also beats the
    # N-point row-column form because it amortizes kernel launches; on
    # a single CPU core the one-sided real N-point FFT wins instead —
    # see EXPERIMENTS.md.)
    for transform in ("dct", "idct"):
        for size in SIZES:
            key2n = (transform, "2n", size)
            if key2n not in _TIMINGS:
                continue
            for impl in ("n", "2d"):
                assert _TIMINGS[(transform, impl, size)] < _TIMINGS[key2n]
